#include "network/topology.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace mediaworm::network {

void
Topology::addChannel(int src_router, int src_port, int dst_router,
                     int dst_port)
{
    channels_.push_back({src_router, src_port, dst_router, dst_port});
}

void
Topology::finalize()
{
    int max_port = -1;
    for (const TopoEndpoint& ep : endpoints_)
        max_port = std::max(max_port, ep.port);
    for (const TopoChannel& ch : channels_) {
        max_port = std::max(max_port, ch.srcPort);
        max_port = std::max(max_port, ch.dstPort);
    }
    portsRequired_ = max_port + 1;

    outChan_.assign(
        static_cast<std::size_t>(numRouters_ * portsRequired_), -1);
    for (std::size_t c = 0; c < channels_.size(); ++c) {
        const TopoChannel& ch = channels_[c];
        int& slot = outChan_[static_cast<std::size_t>(
            ch.srcRouter * portsRequired_ + ch.srcPort)];
        MW_ASSERT(slot == -1);
        slot = static_cast<int>(c);
    }
}

int
Topology::outChannelAt(int router, int port) const
{
    if (port < 0 || port >= portsRequired_)
        return -1;
    return outChan_[static_cast<std::size_t>(
        router * portsRequired_ + port)];
}

std::vector<int>
Topology::outChannelsOf(int router) const
{
    std::vector<int> out;
    for (std::size_t c = 0; c < channels_.size(); ++c) {
        if (channels_[c].srcRouter == router)
            out.push_back(static_cast<int>(c));
    }
    return out;
}

int
Topology::degreeOf(int router) const
{
    std::vector<int> neighbours;
    for (const TopoChannel& ch : channels_) {
        if (ch.srcRouter == router)
            neighbours.push_back(ch.dstRouter);
    }
    std::sort(neighbours.begin(), neighbours.end());
    neighbours.erase(
        std::unique(neighbours.begin(), neighbours.end()),
        neighbours.end());
    return static_cast<int>(neighbours.size());
}

bool
Topology::connected() const
{
    if (numRouters_ <= 1)
        return true;
    std::vector<bool> seen(static_cast<std::size_t>(numRouters_),
                           false);
    std::vector<int> stack{0};
    seen[0] = true;
    int reached = 1;
    while (!stack.empty()) {
        const int r = stack.back();
        stack.pop_back();
        for (const TopoChannel& ch : channels_) {
            if (ch.srcRouter == r
                && !seen[static_cast<std::size_t>(ch.dstRouter)]) {
                seen[static_cast<std::size_t>(ch.dstRouter)] = true;
                ++reached;
                stack.push_back(ch.dstRouter);
            }
        }
    }
    return reached == numRouters_;
}

bool
Topology::symmetric() const
{
    for (const TopoChannel& ch : channels_) {
        int mirrors = 0;
        for (const TopoChannel& other : channels_) {
            if (other.srcRouter == ch.dstRouter
                && other.srcPort == ch.dstPort
                && other.dstRouter == ch.srcRouter
                && other.dstPort == ch.srcPort)
                ++mirrors;
        }
        if (mirrors != 1)
            return false;
    }
    return true;
}

int
Topology::dirPort(int s, int dir) const
{
    if (dirPort_.empty())
        return -1;
    return dirPort_[static_cast<std::size_t>(s * 4 + dir)];
}

Topology
Topology::singleSwitch(int ports)
{
    MW_ASSERT(ports >= 1);
    Topology t;
    t.kind_ = config::TopologyKind::SingleSwitch;
    t.numRouters_ = 1;
    t.endpointsPerSwitch = ports;
    for (int p = 0; p < ports; ++p)
        t.endpoints_.push_back({0, p});
    t.finalize();
    return t;
}

Topology
Topology::grid(config::TopologyKind kind, int width, int height,
               int fat, int eps, bool wrap)
{
    MW_ASSERT(width >= 1 && height >= 1 && fat >= 1 && eps >= 1);
    Topology t;
    t.kind_ = kind;
    t.numRouters_ = width * height;
    t.meshWidth = width;
    t.meshHeight = height;
    t.fatFactor = fat;
    t.wrap = wrap;
    t.endpointsPerSwitch = eps;

    const int num_switches = width * height;

    // Port map per switch: endpoint ports first, then fat channels
    // per present direction in East/West/South/North order. On the
    // torus every direction with a distinct or wrap neighbour is
    // present.
    t.dirPort_.assign(static_cast<std::size_t>(num_switches * 4), -1);
    for (int s = 0; s < num_switches; ++s) {
        const int x = s % width;
        const int y = s / width;
        int next_port = eps;
        const bool present[4] = {
            wrap ? width > 1 : x < width - 1,  // East
            wrap ? width > 1 : x > 0,          // West
            wrap ? height > 1 : y < height - 1, // South
            wrap ? height > 1 : y > 0,         // North
        };
        for (int d = 0; d < 4; ++d) {
            if (!present[d])
                continue;
            t.dirPort_[static_cast<std::size_t>(s * 4 + d)] =
                next_port;
            next_port += fat;
        }
    }

    // Endpoints: node n lives on switch n / eps at port n % eps.
    for (int s = 0; s < num_switches; ++s) {
        for (int e = 0; e < eps; ++e)
            t.endpoints_.push_back({s, e});
    }

    // Inter-switch fat channels: for each adjacent pair, fat links
    // in each direction, pairing the k-th port on both sides. The
    // enumeration order (row-major, East pair then its reverse,
    // South pair then its reverse, wrap channels from the last
    // row/column) fixes the canonical link order.
    auto wire = [&t, fat](int s, int sd, int u, int ud) {
        for (int k = 0; k < fat; ++k) {
            t.addChannel(s, t.dirPort(s, sd) + k, u,
                         t.dirPort(u, ud) + k);
        }
    };
    for (int y = 0; y < height; ++y) {
        for (int x = 0; x < width; ++x) {
            const int s = y * width + x;
            if (x < width - 1) {
                wire(s, 0, s + 1, 1);     // East out
                wire(s + 1, 1, s, 0);     // West back
            } else if (wrap && width > 1) {
                const int u = y * width;  // Row wrap partner.
                wire(s, 0, u, 1);
                wire(u, 1, s, 0);
            }
            if (y < height - 1) {
                wire(s, 2, s + width, 3); // South out
                wire(s + width, 3, s, 2); // North back
            } else if (wrap && height > 1) {
                const int u = x;          // Column wrap partner.
                wire(s, 2, u, 3);
                wire(u, 3, s, 2);
            }
        }
    }

    t.finalize();
    return t;
}

Topology
Topology::fatMesh(int width, int height, int fat, int eps)
{
    return grid(config::TopologyKind::FatMesh, width, height, fat,
                eps, false);
}

Topology
Topology::mesh(int width, int height, int eps)
{
    return grid(config::TopologyKind::Mesh, width, height, 1, eps,
                false);
}

Topology
Topology::torus(int width, int height, int eps)
{
    return grid(config::TopologyKind::Torus, width, height, 1, eps,
                true);
}

Topology
Topology::clos(int m, int n, int r)
{
    MW_ASSERT(m >= 1 && n >= 1 && r >= 1);
    Topology t;
    t.kind_ = config::TopologyKind::Clos;
    t.numRouters_ = r + m;
    t.closM = m;
    t.closN = n;
    t.closR = r;
    t.endpointsPerSwitch = n;

    for (int leaf = 0; leaf < r; ++leaf) {
        for (int e = 0; e < n; ++e)
            t.endpoints_.push_back({leaf, e});
    }
    // Per leaf: the up channel to every spine, then its down mirror
    // (so up/down pairs share the canonical-order locality the
    // fat-mesh wiring has).
    for (int leaf = 0; leaf < r; ++leaf) {
        for (int j = 0; j < m; ++j) {
            const int spine = r + j;
            t.addChannel(leaf, n + j, spine, leaf);
            t.addChannel(spine, leaf, leaf, n + j);
        }
    }

    t.finalize();
    return t;
}

Topology
Topology::build(const config::NetworkConfig& net)
{
    switch (net.topology) {
      case config::TopologyKind::SingleSwitch:
        // The caller (Network) sizes the switch by its router
        // config; the config layer records the paper's 8-port
        // default via totalNodes().
        return singleSwitch(net.singleSwitchPorts);
      case config::TopologyKind::FatMesh:
        return fatMesh(net.meshWidth, net.meshHeight, net.fatFactor,
                       net.endpointsPerSwitch);
      case config::TopologyKind::Mesh:
        return mesh(net.meshWidth, net.meshHeight,
                    net.endpointsPerSwitch);
      case config::TopologyKind::Torus:
        return torus(net.meshWidth, net.meshHeight,
                     net.endpointsPerSwitch);
      case config::TopologyKind::Clos:
        return clos(net.closM, net.closN, net.closR);
    }
    sim::panic("Topology::build: unknown topology kind");
}

} // namespace mediaworm::network
