#include "network/routing.hh"

#include <algorithm>
#include <set>

#include "sim/logging.hh"

namespace mediaworm::network {

namespace {

using router::RouteCandidates;

/** One deterministic grid step: direction (0=E 1=W 2=S 3=N) + VC
 *  class. Class -1 = legacy identity (single-class topologies). */
struct GridStep
{
    int dir;
    int vcClass;
};

/** Dimension-order step on a mesh: X first, then Y, one class. */
GridStep
meshStep(int x, int y, int tx, int ty)
{
    if (tx != x)
        return {tx > x ? 0 : 1, -1};
    MW_ASSERT(ty != y);
    return {ty > y ? 2 : 3, -1};
}

/**
 * Dimension-order step on a torus: the shortest way around the
 * current dimension's ring (ties go East/South), with the dateline
 * class rule - class 0 while the remaining ring path still crosses
 * the wrap channel, class 1 once it no longer does. Within a ring,
 * class-0 channels order by position up to the wrap, the wrap hop
 * exits into class 1, and class-1 traffic never uses the wrap, so
 * every ring's dependency graph is a chain; X resolves before Y, so
 * the chains compose acyclically.
 */
GridStep
torusStep(int width, int height, int x, int y, int tx, int ty)
{
    if (tx != x) {
        const int east = (tx - x + width) % width;
        const int west = (x - tx + width) % width;
        if (east <= west)
            return {0, tx < x ? 0 : 1};
        return {1, tx > x ? 0 : 1};
    }
    MW_ASSERT(ty != y);
    const int south = (ty - y + height) % height;
    const int north = (y - ty + height) % height;
    if (south <= north)
        return {2, ty < y ? 0 : 1};
    return {3, ty > y ? 0 : 1};
}

/** Output port of the (first) channel from @p s to neighbour @p v. */
int
portToward(const Topology& topo, int s, int v)
{
    for (const int c : topo.outChannelsOf(s)) {
        if (topo.channels()[static_cast<std::size_t>(c)].dstRouter == v)
            return topo.channels()[static_cast<std::size_t>(c)].srcPort;
    }
    sim::panic("routing: no channel from router %d to %d", s, v);
}

/**
 * Next hop of the up-down tree route from @p s to @p target: up
 * (towards the root) until the LCA, then down along @p target's
 * ancestor chain.
 */
int
nextHopUpDown(const std::vector<int>& parents, int s, int target)
{
    // Ancestor chain of the target, leaf to root.
    std::vector<int> chain;
    for (int a = target; a != -1;
         a = parents[static_cast<std::size_t>(a)])
        chain.push_back(a);

    // Climb from s until we sit on that chain (the LCA).
    int a = s;
    std::size_t at;
    for (;;) {
        const auto it = std::find(chain.begin(), chain.end(), a);
        if (it != chain.end()) {
            at = static_cast<std::size_t>(it - chain.begin());
            break;
        }
        a = parents[static_cast<std::size_t>(a)];
        MW_ASSERT(a != -1 || !chain.empty());
    }
    if (a != s)
        return parents[static_cast<std::size_t>(s)]; // Up phase.
    MW_ASSERT(at > 0); // s == target is the caller's ejection case.
    return chain[at - 1]; // Down phase: the child towards the target.
}

/** Identity tables for the single switch: node p sits on port p. */
RoutingTables
identityRouting(const Topology& topo)
{
    RoutingTables out;
    out.perRouter.resize(1);
    out.perRouter[0].resize(
        static_cast<std::size_t>(topo.numNodes()));
    for (int d = 0; d < topo.numNodes(); ++d) {
        out.perRouter[0][static_cast<std::size_t>(d)] =
            RouteCandidates::single(
                topo.endpoints()[static_cast<std::size_t>(d)].port);
    }
    return out;
}

} // namespace

std::vector<int>
bfsTreeParents(const Topology& topo)
{
    const int num = topo.numRouters();
    std::vector<int> parents(static_cast<std::size_t>(num), -2);
    parents[0] = -1;
    std::vector<int> queue{0};
    for (std::size_t head = 0; head < queue.size(); ++head) {
        const int u = queue[head];
        for (const int c : topo.outChannelsOf(u)) {
            const int v =
                topo.channels()[static_cast<std::size_t>(c)].dstRouter;
            if (parents[static_cast<std::size_t>(v)] == -2) {
                parents[static_cast<std::size_t>(v)] = u;
                queue.push_back(v);
            }
        }
    }
    for (int r = 0; r < num; ++r)
        MW_ASSERT(parents[static_cast<std::size_t>(r)] != -2);
    return parents;
}

RoutingTables
buildRouting(const Topology& topo, config::RoutingKind kind)
{
    using config::RoutingKind;
    using config::TopologyKind;

    if (topo.kind() == TopologyKind::SingleSwitch)
        return identityRouting(topo);

    MW_ASSERT(kind != RoutingKind::Default);
    const int num_routers = topo.numRouters();
    const int num_nodes = topo.numNodes();

    RoutingTables out;
    out.perRouter.resize(static_cast<std::size_t>(num_routers));
    for (auto& table : out.perRouter)
        table.resize(static_cast<std::size_t>(num_nodes));

    const bool is_clos = topo.kind() == TopologyKind::Clos;
    const bool is_torus = topo.kind() == TopologyKind::Torus;
    const int width = topo.meshWidth;
    const int height = topo.meshHeight;

    if (is_torus && kind == RoutingKind::DimensionOrder)
        out.vcClasses = 2;
    if (kind == RoutingKind::Adaptive && !is_clos) {
        out.vcClasses = is_torus ? 3 : 2;
        out.adaptive = true;
    }
    if (kind == RoutingKind::Adaptive && is_clos)
        out.adaptive = true;

    std::vector<int> parents;
    if (kind == RoutingKind::UpDown && !is_clos)
        parents = bfsTreeParents(topo);

    for (int s = 0; s < num_routers; ++s) {
        router::RouteTable& table =
            out.perRouter[static_cast<std::size_t>(s)];
        for (int d = 0; d < num_nodes; ++d) {
            const TopoEndpoint ep =
                topo.endpoints()[static_cast<std::size_t>(d)];
            RouteCandidates& rc =
                table[static_cast<std::size_t>(d)];
            if (ep.router == s) {
                // Ejection: deliver on the stream's nominal lane.
                rc = RouteCandidates::single(ep.port);
                continue;
            }

            if (is_clos) {
                const int m = topo.closM;
                const int n = topo.closN;
                if (s >= topo.closR) {
                    // Spine: one down channel per leaf.
                    rc = RouteCandidates::single(ep.router);
                    continue;
                }
                const int esc = ep.router % m; // Deterministic spine.
                switch (kind) {
                  case RoutingKind::DimensionOrder:
                    rc = RouteCandidates::single(n + esc);
                    break;
                  case RoutingKind::UpDown:
                    // Natural Clos routing: every spine works;
                    // least-loaded pick spreads the up-phase.
                    rc.count = m;
                    for (int j = 0; j < m; ++j)
                        rc.ports[static_cast<std::size_t>(j)] = n + j;
                    break;
                  case RoutingKind::Adaptive:
                    // Free spines first, deterministic spine as the
                    // escape. One VC class: any spine choice is
                    // already cycle-free (up then down).
                    rc.count = 0;
                    for (int j = 0; j < m; ++j) {
                        if (j != esc)
                            rc.ports[static_cast<std::size_t>(
                                rc.count++)] = n + j;
                    }
                    rc.ports[static_cast<std::size_t>(rc.count++)] =
                        n + esc;
                    if (rc.count > 1)
                        rc.select =
                            RouteCandidates::Select::AdaptiveEscape;
                    break;
                  case RoutingKind::Default:
                    sim::panic("buildRouting: unresolved Default");
                }
                continue;
            }

            // Grid shapes (mesh / torus).
            const int x = s % width;
            const int y = s / width;
            const int tx = ep.router % width;
            const int ty = ep.router / width;
            switch (kind) {
              case RoutingKind::DimensionOrder: {
                const GridStep step = is_torus
                    ? torusStep(width, height, x, y, tx, ty)
                    : meshStep(x, y, tx, ty);
                rc = RouteCandidates::single(
                    topo.dirPort(s, step.dir), step.vcClass);
                break;
              }
              case RoutingKind::UpDown: {
                const int next = nextHopUpDown(parents, s, ep.router);
                rc = RouteCandidates::single(
                    portToward(topo, s, next));
                break;
              }
              case RoutingKind::Adaptive: {
                // Minimal adaptive candidates (the productive
                // direction per dimension, shortest way on the
                // torus) in the top VC class; the dimension-order
                // route is the escape candidate in the dateline
                // class(es) below it.
                const int adaptive_class = is_torus ? 2 : 1;
                rc.count = 0;
                auto add = [&](const GridStep& step) {
                    rc.ports[static_cast<std::size_t>(rc.count)] =
                        topo.dirPort(s, step.dir);
                    rc.vcClasses[static_cast<std::size_t>(rc.count)] =
                        static_cast<std::int8_t>(adaptive_class);
                    ++rc.count;
                };
                if (tx != x)
                    add(is_torus
                            ? torusStep(width, height, x, y, tx, y)
                            : meshStep(x, y, tx, y));
                if (ty != y)
                    add(is_torus
                            ? torusStep(width, height, tx, y, tx, ty)
                            : meshStep(tx, y, tx, ty));
                const GridStep esc = is_torus
                    ? torusStep(width, height, x, y, tx, ty)
                    : meshStep(x, y, tx, ty);
                rc.ports[static_cast<std::size_t>(rc.count)] =
                    topo.dirPort(s, esc.dir);
                rc.vcClasses[static_cast<std::size_t>(rc.count)] =
                    static_cast<std::int8_t>(
                        esc.vcClass < 0 ? 0 : esc.vcClass);
                ++rc.count;
                if (rc.count > 1)
                    rc.select =
                        RouteCandidates::Select::AdaptiveEscape;
                break;
              }
              case RoutingKind::Default:
                sim::panic("buildRouting: unresolved Default");
            }
        }
    }
    return out;
}

std::vector<std::pair<int, int>>
channelDependencyEdges(const Topology& topo,
                       const RoutingTables& tables, bool escape_only)
{
    const int K = tables.vcClasses;
    const auto cls_of = [](const RouteCandidates& rc, int i) {
        const int c = rc.vcClasses[static_cast<std::size_t>(i)];
        return c < 0 ? 0 : c;
    };
    const auto first_cand = [escape_only](const RouteCandidates& rc) {
        return escape_only
                && rc.select == RouteCandidates::Select::AdaptiveEscape
            ? rc.count - 1
            : 0;
    };

    std::set<std::pair<int, int>> edges;
    for (int d = 0; d < topo.numNodes(); ++d) {
        const int tr = topo.routerOfNode(d);
        for (int u = 0; u < topo.numRouters(); ++u) {
            if (u == tr)
                continue;
            const RouteCandidates& rc =
                tables.perRouter[static_cast<std::size_t>(u)]
                                [static_cast<std::size_t>(d)];
            for (int i = first_cand(rc); i < rc.count; ++i) {
                const int c = topo.outChannelAt(
                    u, rc.ports[static_cast<std::size_t>(i)]);
                MW_ASSERT(c >= 0);
                const int v =
                    topo.channels()[static_cast<std::size_t>(c)]
                        .dstRouter;
                if (v == tr)
                    continue; // Next hop is the ejection port.
                const RouteCandidates& rc2 =
                    tables.perRouter[static_cast<std::size_t>(v)]
                                    [static_cast<std::size_t>(d)];
                for (int j = first_cand(rc2); j < rc2.count; ++j) {
                    const int c2 = topo.outChannelAt(
                        v, rc2.ports[static_cast<std::size_t>(j)]);
                    MW_ASSERT(c2 >= 0);
                    edges.insert({c * K + cls_of(rc, i),
                                  c2 * K + cls_of(rc2, j)});
                }
            }
        }
    }
    return {edges.begin(), edges.end()};
}

bool
acyclic(int num_nodes, const std::vector<std::pair<int, int>>& edges)
{
    // Kahn's algorithm over the (sparse) edge list.
    std::vector<int> indegree(static_cast<std::size_t>(num_nodes), 0);
    for (const auto& [from, to] : edges) {
        MW_ASSERT(from >= 0 && from < num_nodes);
        MW_ASSERT(to >= 0 && to < num_nodes);
        ++indegree[static_cast<std::size_t>(to)];
    }
    std::vector<int> ready;
    for (int n = 0; n < num_nodes; ++n) {
        if (indegree[static_cast<std::size_t>(n)] == 0)
            ready.push_back(n);
    }
    int removed = 0;
    while (!ready.empty()) {
        const int n = ready.back();
        ready.pop_back();
        ++removed;
        for (const auto& [from, to] : edges) {
            if (from == n
                && --indegree[static_cast<std::size_t>(to)] == 0)
                ready.push_back(to);
        }
    }
    return removed == num_nodes;
}

} // namespace mediaworm::network
