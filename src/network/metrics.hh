/**
 * @file
 * Network-wide measurement hub (the paper's output parameters,
 * Section 4.1): mean frame delivery interval d and its standard
 * deviation sigma_d for CBR/VBR streams, and average latency for
 * best-effort traffic.
 *
 * Optionally forwards delivery observations to an attached
 * obs::StreamTelemetry collector (per-stream sliding windows). The
 * forwarding is a null-pointer check when nothing is attached, and
 * compiles out entirely under -DMEDIAWORM_NO_OBS.
 */

#ifndef MEDIAWORM_NETWORK_METRICS_HH
#define MEDIAWORM_NETWORK_METRICS_HH

#include <cstdint>

#include "sim/ids.hh"
#include "sim/time.hh"
#include "stats/accumulator.hh"
#include "stats/histogram.hh"
#include "stats/interval_tracker.hh"

#ifndef MEDIAWORM_NO_OBS
#include "obs/telemetry.hh"
#else
// Keep attachTelemetry() declarable; calls become no-ops.
namespace mediaworm::obs {
class StreamTelemetry;
}
#endif

namespace mediaworm::network {

/** Shared by every NI sink; aggregates delivery measurements. */
class MetricsHub
{
  public:
    MetricsHub() = default;

    /**
     * Starts measurement at @p now. Frame intervals spanning the
     * boundary and best-effort messages injected before it are
     * excluded (steady-state measurement after warmup).
     */
    void
    enable(sim::Tick now)
    {
        frames_.enable();
        enableTime_ = now;
        enabled_ = true;
    }

    /** True once enable() ran. */
    bool enabled() const { return enabled_; }

    /**
     * Attaches a per-stream telemetry collector; deliveries are
     * forwarded until detached (pass nullptr). The hub does not own
     * the collector. No-op under MEDIAWORM_NO_OBS.
     */
    void
    attachTelemetry([[maybe_unused]] obs::StreamTelemetry* telemetry)
    {
#ifndef MEDIAWORM_NO_OBS
        telemetry_ = telemetry;
#endif
    }

    /** Records delivery of a complete video frame. */
    void
    recordFrameDelivery(sim::StreamId stream, sim::Tick now)
    {
        frames_.recordDelivery(stream, now);
#ifndef MEDIAWORM_NO_OBS
        if (telemetry_ != nullptr)
            telemetry_->recordFrameDelivery(stream, now);
#endif
    }

    /** Records delivery of a real-time message. */
    void
    recordRtMessage([[maybe_unused]] sim::StreamId stream,
                    sim::Tick inject_time, sim::Tick now)
    {
        ++rtMessages_;
        if (enabled_ && inject_time >= enableTime_) {
            rtMessageLatency_.add(
                sim::toMicroseconds(now - inject_time));
        }
#ifndef MEDIAWORM_NO_OBS
        if (telemetry_ != nullptr) {
            telemetry_->recordMessageDelay(
                stream, sim::toMicroseconds(now - inject_time));
        }
#endif
    }

    /**
     * Records delivery of a best-effort message.
     *
     * @param inject_time Message creation time at the host.
     * @param network_enter_time When the tail flit left the NI.
     * @param now Tail delivery time.
     */
    void
    recordBeMessage(sim::Tick inject_time, sim::Tick network_enter_time,
                    sim::Tick now)
    {
        ++beMessages_;
        if (enabled_ && inject_time >= enableTime_) {
            const double total_us =
                sim::toMicroseconds(now - inject_time);
            beLatency_.add(total_us);
            beLatencyHistogram_.add(total_us);
            beNetworkLatency_.add(
                sim::toMicroseconds(now - network_enter_time));
        }
    }

    /** Counts one delivered flit (any class). */
    void
    recordFlit([[maybe_unused]] sim::StreamId stream,
               [[maybe_unused]] sim::Tick now)
    {
        ++flitsDelivered_;
#ifndef MEDIAWORM_NO_OBS
        if (telemetry_ != nullptr)
            telemetry_->recordFlit(stream, now);
#endif
    }

    /** Frame delivery-interval statistics. */
    const stats::IntervalTracker& frames() const { return frames_; }

    /** Best-effort message latency in microseconds (host to sink). */
    const stats::Accumulator& beLatency() const { return beLatency_; }

    /** Best-effort in-network latency (NI exit to sink). */
    const stats::Accumulator&
    beNetworkLatency() const
    {
        return beNetworkLatency_;
    }

    /**
     * Best-effort total-latency distribution (10 us buckets up to
     * 50 ms; tail quantiles via quantile()).
     */
    const stats::Histogram&
    beLatencyHistogram() const
    {
        return beLatencyHistogram_;
    }

    /** Real-time message latency in microseconds. */
    const stats::Accumulator&
    rtMessageLatency() const
    {
        return rtMessageLatency_;
    }

    /** Total best-effort messages delivered (measured or not). */
    std::uint64_t beMessages() const { return beMessages_; }

    /** Total real-time messages delivered (measured or not). */
    std::uint64_t rtMessages() const { return rtMessages_; }

    /** Total flits delivered to sinks. */
    std::uint64_t flitsDelivered() const { return flitsDelivered_; }

  private:
    stats::IntervalTracker frames_;
    stats::Accumulator beLatency_;
    stats::Accumulator beNetworkLatency_;
    stats::Histogram beLatencyHistogram_{0.0, 50000.0, 5000};
    stats::Accumulator rtMessageLatency_;
    std::uint64_t beMessages_ = 0;
    std::uint64_t rtMessages_ = 0;
    std::uint64_t flitsDelivered_ = 0;
    sim::Tick enableTime_ = 0;
    bool enabled_ = false;
#ifndef MEDIAWORM_NO_OBS
    obs::StreamTelemetry* telemetry_ = nullptr;
#endif
};

} // namespace mediaworm::network

#endif // MEDIAWORM_NETWORK_METRICS_HH
