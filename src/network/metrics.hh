/**
 * @file
 * Network-wide measurement hub (the paper's output parameters,
 * Section 4.1): mean frame delivery interval d and its standard
 * deviation sigma_d for CBR/VBR streams, and average latency for
 * best-effort traffic.
 *
 * Measurements accumulate in one MetricsLane per sink node and the
 * hub's accessors merge the lanes in ascending node order on demand.
 * The fixed merge order makes every aggregate - including the
 * floating-point means and variances - a pure function of what each
 * node observed, independent of how record calls from different
 * nodes interleaved. That is what lets conservative-parallel shards
 * (sim/pdes.hh) write their own nodes' lanes concurrently and still
 * reproduce the single-threaded results bit for bit.
 *
 * Measurement gating is a time threshold (enable()): a record counts
 * when it happens - or, for latencies, when its message was injected
 * - at or after the threshold. The threshold is set before the run
 * and only read during it, so it needs no event and no
 * synchronization.
 *
 * Optionally forwards delivery observations to an attached
 * obs::StreamTelemetry collector per lane (per-stream sliding
 * windows). The forwarding is a null-pointer check when nothing is
 * attached, and compiles out entirely under -DMEDIAWORM_NO_OBS.
 */

#ifndef MEDIAWORM_NETWORK_METRICS_HH
#define MEDIAWORM_NETWORK_METRICS_HH

#include <cstdint>
#include <limits>
#include <memory>
#include <vector>

#include "sim/ids.hh"
#include "sim/time.hh"
#include "stats/accumulator.hh"
#include "stats/histogram.hh"
#include "stats/interval_tracker.hh"

#ifndef MEDIAWORM_NO_OBS
#include "obs/telemetry.hh"
#else
// Keep attachTelemetry() declarable; calls become no-ops.
namespace mediaworm::obs {
class StreamTelemetry;
}
#endif

namespace mediaworm::network {

class MetricsHub;

/** One sink node's measurement accumulators (see MetricsHub). */
class MetricsLane
{
  public:
    explicit MetricsLane(const MetricsHub* hub) : hub_(hub) {}

    /** Records delivery of a complete video frame. */
    void recordFrameDelivery(sim::StreamId stream, sim::Tick now);

    /** Records delivery of a real-time message. */
    void recordRtMessage(sim::StreamId stream, sim::Tick inject_time,
                         sim::Tick now);

    /**
     * Records delivery of a best-effort message.
     *
     * @param inject_time Message creation time at the host.
     * @param network_enter_time When the tail flit left the NI.
     * @param now Tail delivery time.
     */
    void recordBeMessage(sim::Tick inject_time,
                         sim::Tick network_enter_time, sim::Tick now);

    /** Counts one delivered flit (any class). */
    void recordFlit(sim::StreamId stream, sim::Tick now);

    /**
     * Attaches a per-stream telemetry collector to this lane; pass
     * nullptr to detach. No-op under MEDIAWORM_NO_OBS.
     */
    void
    attachTelemetry([[maybe_unused]] obs::StreamTelemetry* telemetry)
    {
#ifndef MEDIAWORM_NO_OBS
        telemetry_ = telemetry;
#endif
    }

  private:
    friend class MetricsHub;

    const MetricsHub* hub_;
    stats::IntervalTracker frames_;
    stats::Accumulator beLatency_;
    stats::Accumulator beNetworkLatency_;
    stats::Histogram beLatencyHistogram_{0.0, 50000.0, 5000};
    stats::Accumulator rtMessageLatency_;
    std::uint64_t beMessages_ = 0;
    std::uint64_t rtMessages_ = 0;
    std::uint64_t flitsDelivered_ = 0;
#ifndef MEDIAWORM_NO_OBS
    obs::StreamTelemetry* telemetry_ = nullptr;
#endif
};

/** Shared by every NI sink; aggregates delivery measurements. */
class MetricsHub
{
  public:
    MetricsHub() = default;

    MetricsHub(const MetricsHub&) = delete;
    MetricsHub& operator=(const MetricsHub&) = delete;

    /**
     * Starts measurement at @p now. Frame intervals spanning the
     * boundary and messages injected before it are excluded
     * (steady-state measurement after warmup). May be called before
     * the simulation reaches @p now; gating is by timestamp, not by
     * call time.
     */
    void enable(sim::Tick now) { measureFrom_ = now; }

    /** True once enable() ran. */
    bool enabled() const { return measureFrom_ != kDisabled; }

    /** Measurement threshold; effectively +infinity until enable(). */
    sim::Tick measureFrom() const { return measureFrom_; }

    /**
     * Node @p node 's lane, created on first use (single-threaded
     * construction time only; during a sharded run each shard must
     * touch only its own nodes' pre-created lanes).
     */
    MetricsLane&
    lane(int node)
    {
        const auto index = static_cast<std::size_t>(node);
        if (index >= lanes_.size())
            growLanes(index + 1);
        return *lanes_[index];
    }

    /** Number of lanes created so far. */
    int numLanes() const { return static_cast<int>(lanes_.size()); }

    /**
     * Attaches a telemetry collector to every current and future
     * lane (single-collector convenience; sharded runs attach one
     * collector per shard via lane().attachTelemetry). The hub does
     * not own the collector. No-op under MEDIAWORM_NO_OBS.
     */
    void
    attachTelemetry([[maybe_unused]] obs::StreamTelemetry* telemetry)
    {
#ifndef MEDIAWORM_NO_OBS
        defaultTelemetry_ = telemetry;
        for (auto& lane : lanes_)
            lane->attachTelemetry(telemetry);
#endif
    }

    // Single-sink convenience recorders (lane 0): used by models
    // with one delivery point (PCS) and by unit tests.
    void
    recordFrameDelivery(sim::StreamId stream, sim::Tick now)
    {
        lane(0).recordFrameDelivery(stream, now);
    }

    void
    recordRtMessage(sim::StreamId stream, sim::Tick inject_time,
                    sim::Tick now)
    {
        lane(0).recordRtMessage(stream, inject_time, now);
    }

    void
    recordBeMessage(sim::Tick inject_time, sim::Tick network_enter_time,
                    sim::Tick now)
    {
        lane(0).recordBeMessage(inject_time, network_enter_time, now);
    }

    void
    recordFlit(sim::StreamId stream, sim::Tick now)
    {
        lane(0).recordFlit(stream, now);
    }

    // Merged read-side accessors. Each call re-merges the lanes in
    // ascending node order - cheap at end-of-run reporting scale,
    // deterministic regardless of how the run was sharded. The
    // returned reference is invalidated by the next accessor call.

    /** Frame delivery-interval statistics. */
    const stats::IntervalTracker& frames() const;

    /** Best-effort message latency in microseconds (host to sink). */
    const stats::Accumulator& beLatency() const;

    /** Best-effort in-network latency (NI exit to sink). */
    const stats::Accumulator& beNetworkLatency() const;

    /**
     * Best-effort total-latency distribution (10 us buckets up to
     * 50 ms; tail quantiles via quantile()).
     */
    const stats::Histogram& beLatencyHistogram() const;

    /** Real-time message latency in microseconds. */
    const stats::Accumulator& rtMessageLatency() const;

    /** Total best-effort messages delivered (measured or not). */
    std::uint64_t beMessages() const;

    /** Total real-time messages delivered (measured or not). */
    std::uint64_t rtMessages() const;

    /** Total flits delivered to sinks. */
    std::uint64_t flitsDelivered() const;

  private:
    static constexpr sim::Tick kDisabled =
        std::numeric_limits<sim::Tick>::max();

    void growLanes(std::size_t count);

    std::vector<std::unique_ptr<MetricsLane>> lanes_;
    sim::Tick measureFrom_ = kDisabled;
#ifndef MEDIAWORM_NO_OBS
    obs::StreamTelemetry* defaultTelemetry_ = nullptr;
#endif

    /** Scratch for the merged views; rebuilt by each accessor. */
    struct Merged
    {
        stats::IntervalTracker frames;
        stats::Accumulator beLatency;
        stats::Accumulator beNetworkLatency;
        stats::Histogram beLatencyHistogram{0.0, 50000.0, 5000};
        stats::Accumulator rtMessageLatency;
    };
    mutable Merged merged_;
};

// --- MetricsLane inline recorders (hot path) -------------------------------

inline void
MetricsLane::recordFrameDelivery(sim::StreamId stream, sim::Tick now)
{
    if (!frames_.enabled() && now >= hub_->measureFrom())
        frames_.enable();
    frames_.recordDelivery(stream, now);
#ifndef MEDIAWORM_NO_OBS
    if (telemetry_ != nullptr)
        telemetry_->recordFrameDelivery(stream, now);
#endif
}

inline void
MetricsLane::recordRtMessage([[maybe_unused]] sim::StreamId stream,
                             sim::Tick inject_time, sim::Tick now)
{
    ++rtMessages_;
    if (inject_time >= hub_->measureFrom())
        rtMessageLatency_.add(sim::toMicroseconds(now - inject_time));
#ifndef MEDIAWORM_NO_OBS
    if (telemetry_ != nullptr) {
        telemetry_->recordMessageDelay(
            stream, sim::toMicroseconds(now - inject_time));
    }
#endif
}

inline void
MetricsLane::recordBeMessage(sim::Tick inject_time,
                             sim::Tick network_enter_time, sim::Tick now)
{
    ++beMessages_;
    if (inject_time >= hub_->measureFrom()) {
        const double total_us = sim::toMicroseconds(now - inject_time);
        beLatency_.add(total_us);
        beLatencyHistogram_.add(total_us);
        beNetworkLatency_.add(
            sim::toMicroseconds(now - network_enter_time));
    }
}

inline void
MetricsLane::recordFlit([[maybe_unused]] sim::StreamId stream,
                        [[maybe_unused]] sim::Tick now)
{
    ++flitsDelivered_;
#ifndef MEDIAWORM_NO_OBS
    if (telemetry_ != nullptr)
        telemetry_->recordFlit(stream, now);
#endif
}

} // namespace mediaworm::network

#endif // MEDIAWORM_NETWORK_METRICS_HH
