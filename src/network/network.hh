/**
 * @file
 * Topology construction: wires routers, links and network interfaces
 * into a concrete interconnect. The shape comes from the declarative
 * topology graph (network/topology.hh): the paper's two systems - a
 * single switch with one endpoint per port and a k x k fat-mesh with
 * parallel inter-switch links (Section 3.4) - plus k-ary 2-meshes,
 * 2-D tori and 3-stage Clos networks routed by the policy layer
 * (network/routing.hh).
 *
 * Construction is shard-aware: given a ShardPlan, each router (with
 * its endpoints' NIs and their injection/ejection links) is built on
 * its shard's Simulator, and every inter-switch link whose ends live
 * on different shards is bound as a cross-shard channel pair (see
 * router/link.hh). The classic single-Simulator constructor is the
 * trivial plan.
 */

#ifndef MEDIAWORM_NETWORK_NETWORK_HH
#define MEDIAWORM_NETWORK_NETWORK_HH

#include <memory>
#include <string>
#include <vector>

#include "config/network_config.hh"
#include "config/router_config.hh"
#include "network/metrics.hh"
#include "network/network_interface.hh"
#include "network/partition.hh"
#include "network/topology.hh"
#include "router/link.hh"
#include "router/wormhole_router.hh"
#include "sim/random.hh"
#include "sim/simulator.hh"
#include "stats/registry.hh"

namespace mediaworm::network {

/** A built interconnect: routers + links + NIs, ready for traffic. */
class Network
{
  public:
    /** One direction of a link that crosses shards: the channel's
     *  consumer shard drains it at PDES epoch boundaries. */
    struct CrossChannel
    {
        router::Link* link;
        /** True for the flit channel, false for the credit one. */
        bool isFlit;
        int consumerShard;
    };

    /**
     * Builds and wires the configured topology on one kernel (the
     * classic single-threaded run; trivial shard plan).
     *
     * @param simulator Owning kernel.
     * @param router_cfg Per-router hardware configuration.
     * @param net_cfg Topology shape.
     * @param metrics Shared measurement hub for all NI sinks.
     * @param rng Random stream (used by the Random fat-link policy).
     */
    Network(sim::Simulator& simulator,
            const config::RouterConfig& router_cfg,
            const config::NetworkConfig& net_cfg, MetricsHub& metrics,
            sim::Rng& rng);

    /**
     * Builds the topology across shards: router r and everything
     * attached to it live on shard_sims[plan.shardOfRouter(r)].
     *
     * @param shard_sims One Simulator per shard; must outlive the
     *        network. plan.numShards must match its size.
     */
    Network(std::vector<sim::Simulator*> shard_sims,
            const ShardPlan& plan,
            const config::RouterConfig& router_cfg,
            const config::NetworkConfig& net_cfg, MetricsHub& metrics,
            sim::Rng& rng);

    Network(const Network&) = delete;
    Network& operator=(const Network&) = delete;

    /** Endpoint count. */
    int numNodes() const { return static_cast<int>(nis_.size()); }

    /** Router count. */
    int numRouters() const { return static_cast<int>(routers_.size()); }

    /** Endpoint @p node's network interface. */
    NetworkInterface& ni(int node) { return *nis_[
        static_cast<std::size_t>(node)]; }

    /** Router @p index. */
    router::WormholeRouter& router(int index)
    {
        return *routers_[static_cast<std::size_t>(index)];
    }

    /** All links (for utilization reporting). */
    const std::vector<std::unique_ptr<router::Link>>&
    links() const
    {
        return links_;
    }

    /** The switch that hosts endpoint @p node. */
    int switchOfNode(int node) const;

    /** The shard that owns endpoint @p node. */
    int
    shardOfNode(int node) const
    {
        return plan_.shardOfRouter(switchOfNode(node));
    }

    /** The Simulator that owns endpoint @p node (traffic sources
     *  for the node must schedule on it). */
    sim::Simulator&
    simOfNode(int node) const
    {
        return *sims_[static_cast<std::size_t>(shardOfNode(node))];
    }

    /** The shard plan this network was built with. */
    const ShardPlan& plan() const { return plan_; }

    /** Link channels that cross shards (PDES mailboxes). */
    const std::vector<CrossChannel>&
    crossChannels() const
    {
        return crossChannels_;
    }

    /**
     * Minimum delay among cross-shard links: the conservative
     * lookahead window. kTickNever when nothing crosses shards.
     */
    sim::Tick minCrossShardDelay() const;

    /** Total host-side injection backlog, for drain diagnostics. */
    std::uint64_t totalBacklogFlits() const;

    /**
     * Registers every router's, NI's and link's counters in
     * @p registry for end-of-run reporting.
     */
    void registerStats(stats::Registry& registry) const;

    /** Attaches @p tracer to every router and NI. */
    void attachTracer(sim::Tracer& tracer);

  private:
    void buildSingleSwitch();
    void buildFatMesh();
    /** Mesh / torus / Clos: generic graph wiring + policy tables. */
    void buildRouted();
    /** Instantiates routers, endpoints and inter-router links for
     *  @p topo, in the canonical creation order. */
    void wireTopology(const Topology& topo);

    sim::Simulator& simOfRouter(int r) const;
    router::Link& newLink(const std::string& name, int sender_router,
                          int receiver_router);
    void attachEndpoint(router::WormholeRouter& sw, int sw_index,
                        int port, int node);

    std::vector<sim::Simulator*> sims_;
    ShardPlan plan_;
    config::RouterConfig routerCfg_;
    config::NetworkConfig netCfg_;
    MetricsHub& metrics_;
    sim::Rng* rng_;
    sim::Tick linkDelay_;

    std::vector<std::unique_ptr<router::WormholeRouter>> routers_;
    std::vector<std::unique_ptr<NetworkInterface>> nis_;
    std::vector<std::unique_ptr<router::Link>> links_;
    /** Per-switch RNGs for the Random fat-link policy: route draws
     *  must stay shard-local, so each switch owns a split. */
    std::vector<std::unique_ptr<sim::Rng>> routeRngs_;
    std::vector<CrossChannel> crossChannels_;
    /** nodeRouter_[node] = hosting router (from the topology graph). */
    std::vector<int> nodeRouter_;
};

} // namespace mediaworm::network

#endif // MEDIAWORM_NETWORK_NETWORK_HH
