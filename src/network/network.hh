/**
 * @file
 * Topology construction: wires routers, links and network interfaces
 * into the two systems the paper evaluates - a single switch with one
 * endpoint per port, and a k x k fat-mesh with parallel inter-switch
 * links and multiple endpoints per switch (Section 3.4).
 */

#ifndef MEDIAWORM_NETWORK_NETWORK_HH
#define MEDIAWORM_NETWORK_NETWORK_HH

#include <memory>
#include <string>
#include <vector>

#include "config/network_config.hh"
#include "config/router_config.hh"
#include "network/metrics.hh"
#include "network/network_interface.hh"
#include "router/link.hh"
#include "router/wormhole_router.hh"
#include "sim/random.hh"
#include "sim/simulator.hh"
#include "stats/registry.hh"

namespace mediaworm::network {

/** A built interconnect: routers + links + NIs, ready for traffic. */
class Network
{
  public:
    /**
     * Builds and wires the configured topology.
     *
     * @param simulator Owning kernel.
     * @param router_cfg Per-router hardware configuration.
     * @param net_cfg Topology shape.
     * @param metrics Shared measurement hub for all NI sinks.
     * @param rng Random stream (used by the Random fat-link policy).
     */
    Network(sim::Simulator& simulator,
            const config::RouterConfig& router_cfg,
            const config::NetworkConfig& net_cfg, MetricsHub& metrics,
            sim::Rng& rng);

    Network(const Network&) = delete;
    Network& operator=(const Network&) = delete;

    /** Endpoint count. */
    int numNodes() const { return static_cast<int>(nis_.size()); }

    /** Router count. */
    int numRouters() const { return static_cast<int>(routers_.size()); }

    /** Endpoint @p node's network interface. */
    NetworkInterface& ni(int node) { return *nis_[
        static_cast<std::size_t>(node)]; }

    /** Router @p index. */
    router::WormholeRouter& router(int index)
    {
        return *routers_[static_cast<std::size_t>(index)];
    }

    /** All links (for utilization reporting). */
    const std::vector<std::unique_ptr<router::Link>>&
    links() const
    {
        return links_;
    }

    /** The switch that hosts endpoint @p node. */
    int switchOfNode(int node) const;

    /** Total host-side injection backlog, for drain diagnostics. */
    std::uint64_t totalBacklogFlits() const;

    /**
     * Registers every router's, NI's and link's counters in
     * @p registry for end-of-run reporting.
     */
    void registerStats(stats::Registry& registry) const;

    /** Attaches @p tracer to every router and NI. */
    void attachTracer(sim::Tracer& tracer);

  private:
    void buildSingleSwitch();
    void buildFatMesh();

    router::Link& newLink(const std::string& name);
    void attachEndpoint(router::WormholeRouter& sw, int port, int node);

    sim::Simulator& simulator_;
    config::RouterConfig routerCfg_;
    config::NetworkConfig netCfg_;
    MetricsHub& metrics_;
    sim::Rng* rng_;
    sim::Tick linkDelay_;

    std::vector<std::unique_ptr<router::WormholeRouter>> routers_;
    std::vector<std::unique_ptr<NetworkInterface>> nis_;
    std::vector<std::unique_ptr<router::Link>> links_;
};

} // namespace mediaworm::network

#endif // MEDIAWORM_NETWORK_NETWORK_HH
