/**
 * @file
 * Topology partitioner for conservative-parallel execution: maps
 * every router (and with it, its attached endpoints and their NIs)
 * to a shard. Links between routers of different shards become the
 * cross-shard mailboxes the PDES executor synchronizes on
 * (sim/pdes.hh, router/link.hh).
 */

#ifndef MEDIAWORM_NETWORK_PARTITION_HH
#define MEDIAWORM_NETWORK_PARTITION_HH

#include <vector>

#include "config/network_config.hh"

namespace mediaworm::network {

/** Router-to-shard assignment for one topology. */
struct ShardPlan
{
    /** Shard count; 1 means the classic single-threaded run. */
    int numShards = 1;

    /** routerShard[r] = shard of router r; empty means all on 0. */
    std::vector<int> routerShard;

    /** Shard owning router @p r. */
    int
    shardOfRouter(int r) const
    {
        return routerShard.empty()
            ? 0
            : routerShard[static_cast<std::size_t>(r)];
    }

    /** True for the single-shard (classic) plan. */
    bool trivial() const { return numShards <= 1; }
};

/**
 * Plans a shard assignment for @p net.
 *
 * @param requested_shards Shard count from configuration: >= 1 is
 *        clamped to the router count; 0 asks for the auto heuristic
 *        (one shard per hardware thread, clamped likewise).
 * @param hardware_threads std::thread::hardware_concurrency(), or
 *        any cap the caller wants the heuristic to respect.
 *
 * A single switch always yields one shard (there is nothing to
 * cut). A fat mesh is cut into contiguous row-major strips of
 * near-equal router count: row-major strips keep most mesh links
 * internal while the strip boundaries carry the cross-shard
 * channels, whose link delay is the synchronization lookahead.
 */
ShardPlan planShards(const config::NetworkConfig& net,
                     int requested_shards, unsigned hardware_threads);

} // namespace mediaworm::network

#endif // MEDIAWORM_NETWORK_PARTITION_HH
