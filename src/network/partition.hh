/**
 * @file
 * Topology partitioner for conservative-parallel execution: maps
 * every router (and with it, its attached endpoints and their NIs)
 * to a shard. Links between routers of different shards become the
 * cross-shard mailboxes the PDES executor synchronizes on
 * (sim/pdes.hh, router/link.hh).
 */

#ifndef MEDIAWORM_NETWORK_PARTITION_HH
#define MEDIAWORM_NETWORK_PARTITION_HH

#include <vector>

#include "config/network_config.hh"

namespace mediaworm::network {

/** Router-to-shard assignment for one topology. */
struct ShardPlan
{
    /** Shard count; 1 means the classic single-threaded run. */
    int numShards = 1;

    /** routerShard[r] = shard of router r; empty means all on 0. */
    std::vector<int> routerShard;

    /** Shard owning router @p r. */
    int
    shardOfRouter(int r) const
    {
        return routerShard.empty()
            ? 0
            : routerShard[static_cast<std::size_t>(r)];
    }

    /** True for the single-shard (classic) plan. */
    bool trivial() const { return numShards <= 1; }
};

/**
 * Plans a shard assignment for @p net.
 *
 * @param requested_shards Shard count from configuration: >= 1 is
 *        clamped to the router count; 0 asks for the auto heuristic
 *        (one shard per hardware thread, clamped likewise).
 * @param hardware_threads std::thread::hardware_concurrency(), or
 *        any cap the caller wants the heuristic to respect.
 *
 * A single switch always yields one shard (there is nothing to
 * cut). Every other topology is cut into contiguous blocks of the
 * router index: on meshes/tori these are row-major strips that keep
 * most grid links internal; on the Clos the leaves spread across
 * shards and the spines land in the last block. The strip boundaries
 * carry the cross-shard channels, whose link delay is the
 * synchronization lookahead (Network::minCrossShardDelay()).
 */
ShardPlan planShards(const config::NetworkConfig& net,
                     int requested_shards, unsigned hardware_threads);

} // namespace mediaworm::network

#endif // MEDIAWORM_NETWORK_PARTITION_HH
