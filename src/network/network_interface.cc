#include "network/network_interface.hh"

#include "sim/logging.hh"

namespace mediaworm::network {

NetworkInterface::NetworkInterface(sim::Simulator& simulator,
                                   sim::NodeId node,
                                   const config::RouterConfig& cfg,
                                   MetricsHub& metrics, std::string name)
    : simulator_(simulator), node_(node), cfg_(cfg),
      lane_(&metrics.lane(node.value())), name_(std::move(name)),
      cycleTime_(cfg.cycleTime()),
      vcs_(static_cast<std::size_t>(cfg.numVcs)),
      credits_(static_cast<std::size_t>(cfg.numVcs), 0),
      vclock_(static_cast<std::size_t>(cfg.numVcs)),
      muxEvent_(this, "NetworkInterface::mux")
{
    arb_.init(cfg.injectionScheduler, cfg.numVcs, cfg.simdArbiter);
    muxEvent_.setBatchSink(this, 0);
    simulator_.addLazyDrain(this);
}

void
NetworkInterface::muxFired()
{
    mux_.fired();
    serveMux();
}

void
NetworkInterface::fireBatch(sim::Event& first)
{
    // The mux event is this sink's only member type; pull same-tick
    // members straight from the live queue (see
    // WormholeRouter::fireBatch for the ordering argument).
    sim::Event* e = &first;
    do {
        muxFired();
        e = simulator_.nextBatchMember(this);
    } while (e != nullptr);
}

std::uint64_t
NetworkInterface::flushLazy(sim::Tick until)
{
    return mux_.flush(until);
}

bool
NetworkInterface::lazyPending() const
{
    return mux_.pending();
}

void
NetworkInterface::connectInjectionLink(router::Link& link,
                                       int router_buffer_depth)
{
    MW_ASSERT(router_buffer_depth > 0);
    injectionLink_ = &link;
    routerBufferDepth_ = router_buffer_depth;
    link.connectCreditReceiver(this);
    for (int& c : credits_)
        c = router_buffer_depth;
}

void
NetworkInterface::connectEjectionLink(router::Link& link)
{
    link.connectReceiver(this);
}

void
NetworkInterface::injectMessage(const traffic::MessageDesc& message)
{
    MW_ASSERT(message.numFlits >= 2);
    MW_ASSERT(message.vcLane >= 0 && message.vcLane < cfg_.numVcs);
    MW_ASSERT(message.dest.valid() && message.dest != node_);
    if (cfg_.switching == config::SwitchingKind::VirtualCutThrough
        && routerBufferDepth_ > 0
        && message.numFlits > routerBufferDepth_) {
        sim::fatal("virtual cut-through requires messages (%d flits) "
                   "to fit the %d-flit router buffers",
                   message.numFlits, routerBufferDepth_);
    }

    InjectionVc& vc = vcs_[static_cast<std::size_t>(message.vcLane)];
    const sim::Tick now = simulator_.now();

    if (tracer_ != nullptr && tracer_->accepts(message.stream)) {
        tracer_->record({now, sim::TracePoint::HostInject,
                         message.stream, message.seq, -1,
                         node_.value(), -1, message.vcLane});
    }

    // The injection multiplexer is a scheduling point like the
    // router's stage 5: stamp every flit with the Virtual Clock of
    // this VC lane (header installs the message's Vtick).
    router::VirtualClockState& vclock =
        vclock_[static_cast<std::size_t>(message.vcLane)];
    vclock.beginMessage(message.vtick);

    router::Flit flit;
    flit.cls = message.cls;
    flit.stream = message.stream;
    flit.message = message.seq;
    flit.messageFlits = message.numFlits;
    flit.dest = message.dest;
    flit.vcLane = message.vcLane;
    flit.vtick = message.vtick;
    flit.frame = message.frame;
    flit.injectTime = now;

    for (int i = 0; i < message.numFlits; ++i) {
        flit.index = i;
        flit.type = i == 0 ? router::FlitType::Header
            : i == message.numFlits - 1 ? router::FlitType::Tail
                                        : router::FlitType::Body;
        flit.endOfFrame =
            message.endOfFrame && flit.type == router::FlitType::Tail;
        flit.stamp = vclock.tick(now);
        flit.arrivalSeq = nextArrivalSeq_++;
        vc.queue.push(flit);
    }
    refreshEligibility(message.vcLane);
    kickMux();
}

void
NetworkInterface::receiveFlit(const router::Flit& flit, int vc)
{
    const sim::Tick now = simulator_.now();
    if (tracer_ != nullptr && tracer_->accepts(flit.stream)) {
        tracer_->record({now, sim::TracePoint::Eject, flit.stream,
                         flit.message, flit.index, node_.value(), -1,
                         vc});
    }
    lane_->recordFlit(flit.stream, now);
    if (!flit.isTail())
        return;
    if (flit.cls == router::TrafficClass::BestEffort) {
        lane_->recordBeMessage(flit.injectTime,
                               flit.networkEnterTime, now);
        return;
    }
    lane_->recordRtMessage(flit.stream, flit.injectTime, now);
    if (flit.endOfFrame)
        lane_->recordFrameDelivery(flit.stream, now);
}

void
NetworkInterface::creditReturned(int vc)
{
    ++credits_[static_cast<std::size_t>(vc)];
    refreshEligibility(vc);
    kickMux();
}

std::uint64_t
NetworkInterface::backlogFlits() const
{
    std::uint64_t total = 0;
    for (const InjectionVc& vc : vcs_)
        total += vc.queue.size();
    return total;
}

void
NetworkInterface::refreshEligibility(int vc_index)
{
    InjectionVc& vc = vcs_[static_cast<std::size_t>(vc_index)];
    const int credits = credits_[static_cast<std::size_t>(vc_index)];
    bool ready = !vc.queue.empty() && credits > 0;
    if (ready
        && cfg_.switching == config::SwitchingKind::VirtualCutThrough) {
        // Virtual cut-through gates message launch on the router
        // input buffer holding the whole message.
        const router::Flit& head = vc.queue.front();
        if (head.isHeader() && credits < head.messageFlits)
            ready = false;
    }
    if (ready)
        arb_.setEligible(vc_index, vc.queue.front());
    else
        arb_.clearEligible(vc_index);
}

void
NetworkInterface::kickMux()
{
    if (mux_.kick(simulator_, muxEvent_))
        serveMux();
}

void
NetworkInterface::serveMux()
{
    MW_DEBUG_ASSERT(!mux_.busy());
    MW_DEBUG_ASSERT(injectionLink_ != nullptr);

    if (!arb_.anyEligible())
        return;

    const int v = arb_.pick();
    InjectionVc& vc = vcs_[static_cast<std::size_t>(v)];

    // Stamp the launch time in place and send straight from the
    // queue head; the link copies the flit, so no stack copy.
    router::Flit& flit = vc.queue.front();
    flit.networkEnterTime = simulator_.now();
    injectionLink_->sendFlit(flit, v);
    ++flitsInjected_;
    if (tracer_ != nullptr && tracer_->accepts(flit.stream)) {
        tracer_->record({simulator_.now(),
                         sim::TracePoint::NetworkLaunch, flit.stream,
                         flit.message, flit.index, node_.value(), -1,
                         v});
    }
    vc.queue.dropFront();
    --credits_[static_cast<std::size_t>(v)];
    refreshEligibility(v);

    // Nothing eligible next cycle means a provably-idle wakeup (the
    // anyEligible() gate above has no side effects): elide it.
    mux_.arm(simulator_, muxEvent_, cycleTime_, !arb_.anyEligible());
}

} // namespace mediaworm::network
