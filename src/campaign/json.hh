/**
 * @file
 * Minimal streaming JSON writer and recursive-descent reader for
 * campaign artifacts.
 *
 * Writer output is deterministic by construction: keys are emitted in
 * the order the caller writes them, doubles use a fixed "%.10g"
 * format, and indentation is fixed at two spaces - so two campaigns
 * that compute identical values serialise to byte-identical files
 * regardless of thread count. Non-finite doubles serialise as null
 * (JSON has no NaN/Inf).
 *
 * The reader (parseJson) exists for schema validation and round-trip
 * tests: it handles exactly RFC 8259 JSON as the writer emits it
 * (objects, arrays, strings with the writer's escape set, doubles,
 * booleans, null) and reports failure by position instead of
 * aborting, so tests can assert on malformed input.
 */

#ifndef MEDIAWORM_CAMPAIGN_JSON_HH
#define MEDIAWORM_CAMPAIGN_JSON_HH

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace mediaworm::campaign {

/** Builds a pretty-printed JSON document incrementally. */
class JsonWriter
{
  public:
    JsonWriter() = default;

    /** Opens an object ("{"). */
    void beginObject();
    /** Closes the innermost object. */
    void endObject();
    /** Opens an array ("["). */
    void beginArray();
    /** Closes the innermost array. */
    void endArray();

    /** Emits an object key; the next value/begin* call is its value. */
    void key(std::string_view name);

    void value(double v);
    void value(std::int64_t v);
    void value(std::uint64_t v);
    void value(bool v);
    void value(std::string_view v);
    void value(const char* v) { value(std::string_view(v)); }

    /** key() + value() in one call. */
    template <typename T>
    void member(std::string_view name, T v)
    {
        key(name);
        value(v);
    }

    /** The finished document; all scopes must be closed. */
    const std::string& str() const;

    /** Escapes @p text per RFC 8259 (quotes not included). */
    static std::string escape(std::string_view text);

  private:
    enum class Scope : char { Object, Array };

    void separate(); ///< Comma/newline/indent before a new element.
    void indent();

    std::string out_;
    std::vector<Scope> stack_;
    bool firstInScope_ = true;
    bool afterKey_ = false;
};

/**
 * One parsed JSON value. Object member order is not preserved (keys
 * are sorted by std::map); artifact consumers address members by
 * name, never by position.
 */
struct JsonValue
{
    enum class Kind : char { Null, Bool, Number, String, Array, Object };

    Kind kind = Kind::Null;
    bool boolean = false;
    double number = 0.0;
    std::string string;
    std::vector<JsonValue> array;
    std::map<std::string, JsonValue> object;

    bool isNull() const { return kind == Kind::Null; }
    bool isObject() const { return kind == Kind::Object; }
    bool isArray() const { return kind == Kind::Array; }

    /** Member @p name of an object; nullptr when absent or not an
     *  object. */
    const JsonValue* find(std::string_view name) const;
};

/** Outcome of parseJson(): a value, or an error with a position. */
struct JsonParseResult
{
    bool ok = false;
    JsonValue value;
    std::string error;     ///< Empty on success.
    std::size_t position = 0; ///< Byte offset of the error.
};

/**
 * Parses @p text as one JSON document (trailing whitespace allowed,
 * trailing garbage rejected). Depth is limited to 64 nested scopes.
 */
JsonParseResult parseJson(std::string_view text);

} // namespace mediaworm::campaign

#endif // MEDIAWORM_CAMPAIGN_JSON_HH
