/**
 * @file
 * Minimal streaming JSON writer for campaign artifacts.
 *
 * Output is deterministic by construction: keys are emitted in the
 * order the caller writes them, doubles use a fixed "%.10g" format,
 * and indentation is fixed at two spaces - so two campaigns that
 * compute identical values serialise to byte-identical files
 * regardless of thread count. Non-finite doubles serialise as null
 * (JSON has no NaN/Inf).
 */

#ifndef MEDIAWORM_CAMPAIGN_JSON_HH
#define MEDIAWORM_CAMPAIGN_JSON_HH

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace mediaworm::campaign {

/** Builds a pretty-printed JSON document incrementally. */
class JsonWriter
{
  public:
    JsonWriter() = default;

    /** Opens an object ("{"). */
    void beginObject();
    /** Closes the innermost object. */
    void endObject();
    /** Opens an array ("["). */
    void beginArray();
    /** Closes the innermost array. */
    void endArray();

    /** Emits an object key; the next value/begin* call is its value. */
    void key(std::string_view name);

    void value(double v);
    void value(std::int64_t v);
    void value(std::uint64_t v);
    void value(bool v);
    void value(std::string_view v);
    void value(const char* v) { value(std::string_view(v)); }

    /** key() + value() in one call. */
    template <typename T>
    void member(std::string_view name, T v)
    {
        key(name);
        value(v);
    }

    /** The finished document; all scopes must be closed. */
    const std::string& str() const;

    /** Escapes @p text per RFC 8259 (quotes not included). */
    static std::string escape(std::string_view text);

  private:
    enum class Scope : char { Object, Array };

    void separate(); ///< Comma/newline/indent before a new element.
    void indent();

    std::string out_;
    std::vector<Scope> stack_;
    bool firstInScope_ = true;
    bool afterKey_ = false;
};

} // namespace mediaworm::campaign

#endif // MEDIAWORM_CAMPAIGN_JSON_HH
