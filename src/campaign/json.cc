#include "campaign/json.hh"

#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "sim/logging.hh"

namespace mediaworm::campaign {

void
JsonWriter::separate()
{
    if (afterKey_) {
        afterKey_ = false;
        return; // value sits on the key's line
    }
    if (!stack_.empty()) {
        if (!firstInScope_)
            out_ += ',';
        out_ += '\n';
        indent();
    }
    firstInScope_ = false;
}

void
JsonWriter::indent()
{
    out_.append(2 * stack_.size(), ' ');
}

void
JsonWriter::beginObject()
{
    separate();
    out_ += '{';
    stack_.push_back(Scope::Object);
    firstInScope_ = true;
}

void
JsonWriter::endObject()
{
    MW_ASSERT(!stack_.empty() && stack_.back() == Scope::Object);
    const bool empty = firstInScope_;
    stack_.pop_back();
    if (!empty) {
        out_ += '\n';
        indent();
    }
    out_ += '}';
    firstInScope_ = false;
}

void
JsonWriter::beginArray()
{
    separate();
    out_ += '[';
    stack_.push_back(Scope::Array);
    firstInScope_ = true;
}

void
JsonWriter::endArray()
{
    MW_ASSERT(!stack_.empty() && stack_.back() == Scope::Array);
    const bool empty = firstInScope_;
    stack_.pop_back();
    if (!empty) {
        out_ += '\n';
        indent();
    }
    out_ += ']';
    firstInScope_ = false;
}

void
JsonWriter::key(std::string_view name)
{
    MW_ASSERT(!stack_.empty() && stack_.back() == Scope::Object);
    MW_ASSERT(!afterKey_);
    separate();
    out_ += '"';
    out_ += escape(name);
    out_ += "\": ";
    afterKey_ = true;
}

void
JsonWriter::value(double v)
{
    separate();
    if (!std::isfinite(v)) {
        out_ += "null";
        return;
    }
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.10g", v);
    out_ += buf;
}

void
JsonWriter::value(std::int64_t v)
{
    separate();
    char buf[24];
    std::snprintf(buf, sizeof(buf), "%lld",
                  static_cast<long long>(v));
    out_ += buf;
}

void
JsonWriter::value(std::uint64_t v)
{
    separate();
    char buf[24];
    std::snprintf(buf, sizeof(buf), "%llu",
                  static_cast<unsigned long long>(v));
    out_ += buf;
}

void
JsonWriter::value(bool v)
{
    separate();
    out_ += v ? "true" : "false";
}

void
JsonWriter::value(std::string_view v)
{
    separate();
    out_ += '"';
    out_ += escape(v);
    out_ += '"';
}

const std::string&
JsonWriter::str() const
{
    MW_ASSERT(stack_.empty());
    return out_;
}

const JsonValue*
JsonValue::find(std::string_view name) const
{
    if (kind != Kind::Object)
        return nullptr;
    const auto it = object.find(std::string(name));
    return it == object.end() ? nullptr : &it->second;
}

namespace {

/** Recursive-descent RFC 8259 parser over a string_view cursor. */
class JsonParser
{
  public:
    explicit JsonParser(std::string_view text) : text_(text) {}

    JsonParseResult
    run()
    {
        JsonParseResult result;
        skipWs();
        if (!parseValue(result.value, 0)) {
            result.error = error_;
            result.position = pos_;
            return result;
        }
        skipWs();
        if (pos_ != text_.size()) {
            result.error = "trailing characters after document";
            result.position = pos_;
            return result;
        }
        result.ok = true;
        return result;
    }

  private:
    static constexpr int kMaxDepth = 64;

    bool
    fail(const char* message)
    {
        if (error_.empty())
            error_ = message;
        return false;
    }

    void
    skipWs()
    {
        while (pos_ < text_.size()
               && (text_[pos_] == ' ' || text_[pos_] == '\t'
                   || text_[pos_] == '\n' || text_[pos_] == '\r'))
            ++pos_;
    }

    bool
    literal(std::string_view word)
    {
        if (text_.substr(pos_, word.size()) != word)
            return fail("invalid literal");
        pos_ += word.size();
        return true;
    }

    bool
    parseValue(JsonValue& out, int depth)
    {
        if (depth > kMaxDepth)
            return fail("nesting too deep");
        if (pos_ >= text_.size())
            return fail("unexpected end of document");
        switch (text_[pos_]) {
          case '{':
            return parseObject(out, depth);
          case '[':
            return parseArray(out, depth);
          case '"':
            out.kind = JsonValue::Kind::String;
            return parseString(out.string);
          case 't':
            out.kind = JsonValue::Kind::Bool;
            out.boolean = true;
            return literal("true");
          case 'f':
            out.kind = JsonValue::Kind::Bool;
            out.boolean = false;
            return literal("false");
          case 'n':
            out.kind = JsonValue::Kind::Null;
            return literal("null");
          default:
            return parseNumber(out);
        }
    }

    bool
    parseObject(JsonValue& out, int depth)
    {
        out.kind = JsonValue::Kind::Object;
        ++pos_; // '{'
        skipWs();
        if (pos_ < text_.size() && text_[pos_] == '}') {
            ++pos_;
            return true;
        }
        while (true) {
            skipWs();
            if (pos_ >= text_.size() || text_[pos_] != '"')
                return fail("expected object key");
            std::string key;
            if (!parseString(key))
                return false;
            skipWs();
            if (pos_ >= text_.size() || text_[pos_] != ':')
                return fail("expected ':' after key");
            ++pos_;
            skipWs();
            JsonValue member;
            if (!parseValue(member, depth + 1))
                return false;
            out.object.emplace(std::move(key), std::move(member));
            skipWs();
            if (pos_ >= text_.size())
                return fail("unterminated object");
            if (text_[pos_] == ',') {
                ++pos_;
                continue;
            }
            if (text_[pos_] == '}') {
                ++pos_;
                return true;
            }
            return fail("expected ',' or '}' in object");
        }
    }

    bool
    parseArray(JsonValue& out, int depth)
    {
        out.kind = JsonValue::Kind::Array;
        ++pos_; // '['
        skipWs();
        if (pos_ < text_.size() && text_[pos_] == ']') {
            ++pos_;
            return true;
        }
        while (true) {
            skipWs();
            JsonValue element;
            if (!parseValue(element, depth + 1))
                return false;
            out.array.push_back(std::move(element));
            skipWs();
            if (pos_ >= text_.size())
                return fail("unterminated array");
            if (text_[pos_] == ',') {
                ++pos_;
                continue;
            }
            if (text_[pos_] == ']') {
                ++pos_;
                return true;
            }
            return fail("expected ',' or ']' in array");
        }
    }

    bool
    parseString(std::string& out)
    {
        ++pos_; // opening quote
        while (pos_ < text_.size()) {
            const char c = text_[pos_];
            if (c == '"') {
                ++pos_;
                return true;
            }
            if (c != '\\') {
                out += c;
                ++pos_;
                continue;
            }
            if (++pos_ >= text_.size())
                return fail("unterminated escape");
            switch (text_[pos_]) {
              case '"': out += '"'; break;
              case '\\': out += '\\'; break;
              case '/': out += '/'; break;
              case 'b': out += '\b'; break;
              case 'f': out += '\f'; break;
              case 'n': out += '\n'; break;
              case 'r': out += '\r'; break;
              case 't': out += '\t'; break;
              case 'u': {
                // The writer only emits \u00xx for control bytes;
                // decode the low byte and reject surrogates.
                if (pos_ + 4 >= text_.size())
                    return fail("truncated \\u escape");
                unsigned code = 0;
                for (int i = 1; i <= 4; ++i) {
                    const char h = text_[pos_ + i];
                    code <<= 4;
                    if (h >= '0' && h <= '9')
                        code |= static_cast<unsigned>(h - '0');
                    else if (h >= 'a' && h <= 'f')
                        code |= static_cast<unsigned>(h - 'a' + 10);
                    else if (h >= 'A' && h <= 'F')
                        code |= static_cast<unsigned>(h - 'A' + 10);
                    else
                        return fail("invalid \\u escape");
                }
                if (code > 0xff)
                    return fail("non-latin \\u escape unsupported");
                out += static_cast<char>(code);
                pos_ += 4;
                break;
              }
              default:
                return fail("unknown escape character");
            }
            ++pos_;
        }
        return fail("unterminated string");
    }

    bool
    parseNumber(JsonValue& out)
    {
        const std::size_t start = pos_;
        if (pos_ < text_.size() && text_[pos_] == '-')
            ++pos_;
        while (pos_ < text_.size()
               && ((text_[pos_] >= '0' && text_[pos_] <= '9')
                   || text_[pos_] == '.' || text_[pos_] == 'e'
                   || text_[pos_] == 'E' || text_[pos_] == '+'
                   || text_[pos_] == '-'))
            ++pos_;
        if (pos_ == start)
            return fail("expected a value");
        char* end = nullptr;
        const std::string token(text_.substr(start, pos_ - start));
        out.number = std::strtod(token.c_str(), &end);
        if (end != token.c_str() + token.size())
            return fail("malformed number");
        out.kind = JsonValue::Kind::Number;
        return true;
    }

    std::string_view text_;
    std::size_t pos_ = 0;
    std::string error_;
};

} // namespace

JsonParseResult
parseJson(std::string_view text)
{
    return JsonParser(text).run();
}

std::string
JsonWriter::escape(std::string_view text)
{
    std::string out;
    out.reserve(text.size());
    for (char c : text) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\b': out += "\\b"; break;
          case '\f': out += "\\f"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x",
                              static_cast<unsigned>(
                                  static_cast<unsigned char>(c)));
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

} // namespace mediaworm::campaign
