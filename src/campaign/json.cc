#include "campaign/json.hh"

#include <cmath>
#include <cstdio>

#include "sim/logging.hh"

namespace mediaworm::campaign {

void
JsonWriter::separate()
{
    if (afterKey_) {
        afterKey_ = false;
        return; // value sits on the key's line
    }
    if (!stack_.empty()) {
        if (!firstInScope_)
            out_ += ',';
        out_ += '\n';
        indent();
    }
    firstInScope_ = false;
}

void
JsonWriter::indent()
{
    out_.append(2 * stack_.size(), ' ');
}

void
JsonWriter::beginObject()
{
    separate();
    out_ += '{';
    stack_.push_back(Scope::Object);
    firstInScope_ = true;
}

void
JsonWriter::endObject()
{
    MW_ASSERT(!stack_.empty() && stack_.back() == Scope::Object);
    const bool empty = firstInScope_;
    stack_.pop_back();
    if (!empty) {
        out_ += '\n';
        indent();
    }
    out_ += '}';
    firstInScope_ = false;
}

void
JsonWriter::beginArray()
{
    separate();
    out_ += '[';
    stack_.push_back(Scope::Array);
    firstInScope_ = true;
}

void
JsonWriter::endArray()
{
    MW_ASSERT(!stack_.empty() && stack_.back() == Scope::Array);
    const bool empty = firstInScope_;
    stack_.pop_back();
    if (!empty) {
        out_ += '\n';
        indent();
    }
    out_ += ']';
    firstInScope_ = false;
}

void
JsonWriter::key(std::string_view name)
{
    MW_ASSERT(!stack_.empty() && stack_.back() == Scope::Object);
    MW_ASSERT(!afterKey_);
    separate();
    out_ += '"';
    out_ += escape(name);
    out_ += "\": ";
    afterKey_ = true;
}

void
JsonWriter::value(double v)
{
    separate();
    if (!std::isfinite(v)) {
        out_ += "null";
        return;
    }
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.10g", v);
    out_ += buf;
}

void
JsonWriter::value(std::int64_t v)
{
    separate();
    char buf[24];
    std::snprintf(buf, sizeof(buf), "%lld",
                  static_cast<long long>(v));
    out_ += buf;
}

void
JsonWriter::value(std::uint64_t v)
{
    separate();
    char buf[24];
    std::snprintf(buf, sizeof(buf), "%llu",
                  static_cast<unsigned long long>(v));
    out_ += buf;
}

void
JsonWriter::value(bool v)
{
    separate();
    out_ += v ? "true" : "false";
}

void
JsonWriter::value(std::string_view v)
{
    separate();
    out_ += '"';
    out_ += escape(v);
    out_ += '"';
}

const std::string&
JsonWriter::str() const
{
    MW_ASSERT(stack_.empty());
    return out_;
}

std::string
JsonWriter::escape(std::string_view text)
{
    std::string out;
    out.reserve(text.size());
    for (char c : text) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\b': out += "\\b"; break;
          case '\f': out += "\\f"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x",
                              static_cast<unsigned>(
                                  static_cast<unsigned char>(c)));
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

} // namespace mediaworm::campaign
