/**
 * @file
 * Cross-replication statistics: mean, sample standard deviation and
 * 95% confidence intervals over the per-replication values of one
 * metric.
 *
 * Confidence intervals use Student's t distribution (two-sided, 95%),
 * the standard choice for the small replication counts (3-30)
 * typical of simulation studies; beyond 30 degrees of freedom the
 * normal critical value 1.960 is used.
 */

#ifndef MEDIAWORM_CAMPAIGN_AGGREGATE_HH
#define MEDIAWORM_CAMPAIGN_AGGREGATE_HH

#include <cstddef>
#include <vector>

namespace mediaworm::campaign {

/** Aggregated statistics of one metric across replications. */
struct MetricSummary
{
    double mean = 0.0;   ///< Sample mean.
    double stddev = 0.0; ///< Sample standard deviation (n-1).
    double ci95 = 0.0;   ///< Half-width of the 95% confidence interval.
    std::size_t n = 0;   ///< Number of replications aggregated.

    /** Lower edge of the confidence interval. */
    double lo() const { return mean - ci95; }
    /** Upper edge of the confidence interval. */
    double hi() const { return mean + ci95; }
};

/**
 * Two-sided 95% critical value of Student's t with @p df degrees of
 * freedom (1.960 for df > 30; df < 1 is a caller bug).
 */
double tCritical95(std::size_t df);

/**
 * Aggregates @p values (one entry per replication).
 *
 * n == 1 yields stddev = ci95 = 0: a single replication is a point
 * estimate with no error-bar information.
 */
MetricSummary aggregate(const std::vector<double>& values);

} // namespace mediaworm::campaign

#endif // MEDIAWORM_CAMPAIGN_AGGREGATE_HH
