#include "campaign/aggregate.hh"

#include <cmath>

#include "sim/logging.hh"

namespace mediaworm::campaign {

double
tCritical95(std::size_t df)
{
    // Two-sided 95% (upper 0.975 quantile), df = 1..30.
    static constexpr double kTable[30] = {
        12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306,
        2.262,  2.228, 2.201, 2.179, 2.160, 2.145, 2.131, 2.120,
        2.110,  2.101, 2.093, 2.086, 2.080, 2.074, 2.069, 2.064,
        2.060,  2.056, 2.052, 2.048, 2.045, 2.042,
    };
    MW_ASSERT(df >= 1, "tCritical95: zero degrees of freedom");
    if (df <= 30)
        return kTable[df - 1];
    return 1.960;
}

MetricSummary
aggregate(const std::vector<double>& values)
{
    MetricSummary s;
    s.n = values.size();
    if (s.n == 0)
        return s;

    double sum = 0.0;
    for (double v : values)
        sum += v;
    s.mean = sum / static_cast<double>(s.n);

    if (s.n == 1)
        return s;

    double ss = 0.0;
    for (double v : values) {
        const double d = v - s.mean;
        ss += d * d;
    }
    s.stddev = std::sqrt(ss / static_cast<double>(s.n - 1));
    s.ci95 = tCritical95(s.n - 1) * s.stddev
        / std::sqrt(static_cast<double>(s.n));
    return s;
}

} // namespace mediaworm::campaign
