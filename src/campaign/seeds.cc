#include "campaign/seeds.hh"

namespace mediaworm::campaign {

namespace {

/** Golden-ratio increment used by the SplitMix64 stream. */
constexpr std::uint64_t kGamma = 0x9e3779b97f4a7c15ULL;

} // namespace

std::uint64_t
splitmix64(std::uint64_t x)
{
    x ^= x >> 30;
    x *= 0xbf58476d1ce4e5b9ULL;
    x ^= x >> 27;
    x *= 0x94d049bb133111ebULL;
    x ^= x >> 31;
    return x;
}

std::uint64_t
deriveSeed(std::uint64_t root, std::uint64_t point,
           std::uint64_t replication)
{
    // Chain one full mix per component. The additive constants keep
    // the all-zero triple away from the SplitMix64 fixed point at 0.
    std::uint64_t x = splitmix64(root + kGamma);
    x = splitmix64(x + point + kGamma);
    x = splitmix64(x + replication + kGamma);
    return x;
}

} // namespace mediaworm::campaign
