#include "campaign/thread_pool.hh"

#include "sim/logging.hh"

namespace mediaworm::campaign {

ThreadPool::ThreadPool(int threads)
{
    if (threads < 1)
        sim::fatal("ThreadPool: need at least 1 thread, got %d",
                   threads);
    workers_.reserve(static_cast<std::size_t>(threads));
    for (int i = 0; i < threads; ++i)
        workers_.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        stopping_ = true;
    }
    wake_.notify_all();
    for (std::thread& worker : workers_)
        worker.join();
}

void
ThreadPool::submit(std::function<void()> task)
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        tasks_.push_back(std::move(task));
        ++unfinished_;
    }
    wake_.notify_one();
}

void
ThreadPool::wait()
{
    std::unique_lock<std::mutex> lock(mutex_);
    idle_.wait(lock, [this] { return unfinished_ == 0; });
}

int
ThreadPool::hardwareThreads()
{
    const unsigned n = std::thread::hardware_concurrency();
    return n == 0 ? 1 : static_cast<int>(n);
}

void
ThreadPool::workerLoop()
{
    for (;;) {
        std::function<void()> task;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            wake_.wait(lock, [this] {
                return stopping_ || !tasks_.empty();
            });
            if (tasks_.empty())
                return; // stopping_ and nothing left to run
            task = std::move(tasks_.front());
            tasks_.pop_front();
        }
        task();
        {
            std::lock_guard<std::mutex> lock(mutex_);
            --unfinished_;
            if (unfinished_ == 0)
                idle_.notify_all();
        }
    }
}

} // namespace mediaworm::campaign
