#include "campaign/artifact.hh"

#include <algorithm>
#include <cstdio>

#include "calculus/oracle.hh"
#include "campaign/json.hh"
#include "obs/telemetry.hh"
#include "sim/logging.hh"
#include "sim/time.hh"

namespace mediaworm::campaign {

namespace {

void
writeSummary(JsonWriter& json, const MetricSummary& s)
{
    json.beginObject();
    json.member("mean", s.mean);
    json.member("stddev", s.stddev);
    json.member("ci95", s.ci95);
    json.member("n", static_cast<std::uint64_t>(s.n));
    json.endObject();
}

void
writeCounts(JsonWriter& json, const core::ExperimentResult& r)
{
    json.beginObject();
    json.member("interval_samples", r.intervalSamples);
    json.member("frames_delivered", r.framesDelivered);
    json.member("be_messages", r.beMessages);
    json.member("flits_delivered", r.flitsDelivered);
    json.member("events_fired", r.eventsFired);
    json.member("elided_events", r.elidedEvents);
    json.member("rt_streams", static_cast<std::int64_t>(r.rtStreams));
    json.member("streams_per_node",
                static_cast<std::int64_t>(r.streamsPerNode));
    json.member("truncated", r.truncated);
    json.endObject();
}

/**
 * Per-stream telemetry of replication 0 (deterministic - it is the
 * same simulation whatever the jobs count). All times land on the
 * paper's unscaled-ms axis via the report's timeScale.
 */
void
writeTelemetry(JsonWriter& json, const obs::TelemetryReport& t)
{
    const double scale = t.timeScale > 0.0 ? t.timeScale : 1.0;
    json.beginObject();
    json.member("window_ms", sim::toMilliseconds(t.window));
    json.member("time_scale", t.timeScale);
    json.member("worst_stream",
                static_cast<std::int64_t>(
                    t.worstStream.valid() ? t.worstStream.value()
                                          : -1));
    json.member("worst_sigma_d_norm_ms", t.worstStddevMs / scale);
    json.key("streams");
    json.beginArray();
    for (const obs::StreamSeries& series : t.streams) {
        json.beginObject();
        json.member("stream", static_cast<std::int64_t>(
                                  series.stream.value()));
        json.member("frames", series.frames);
        json.member("intervals", series.intervalCount);
        json.member("d_norm_ms", series.meanIntervalMs / scale);
        json.member("sigma_d_norm_ms",
                    series.stddevIntervalMs / scale);
        json.key("series");
        json.beginArray();
        for (const obs::TelemetrySample& sample : series.samples) {
            json.beginObject();
            json.member("t_norm_ms",
                        sim::toMilliseconds(sample.windowStart)
                            / scale);
            json.member("frames", sample.frames);
            json.member("flits", sample.flits);
            json.member("intervals", sample.intervalCount);
            json.member("d_norm_ms", sample.meanIntervalMs / scale);
            json.member("sigma_d_norm_ms",
                        sample.stddevIntervalMs / scale);
            json.member("mbps", sample.mbps);
            json.endObject();
        }
        json.endArray();
        json.endObject();
    }
    json.endArray();
    json.endObject();
}

/**
 * Analytic bounds of replication 0 (deterministic: the oracle is a
 * pure function of configuration and seed). When the same run also
 * gathered telemetry, each stream carries its observed whole-run
 * worst message delay so bound-vs-observed margins can be read
 * directly from the artifact. Times are in the run's (scaled)
 * microseconds - the same base the telemetry delays use.
 */
void
writeBounds(JsonWriter& json, const calculus::BoundsReport& bounds,
            const obs::TelemetryReport* telemetry)
{
    json.beginObject();
    json.member("streams", static_cast<std::int64_t>(
                               bounds.streams.size()));
    json.member("unbounded",
                static_cast<std::int64_t>(bounds.unboundedStreams));
    json.member("max_bound_us", bounds.maxBoundUs);

    double min_margin = calculus::kUnbounded;
    if (telemetry != nullptr) {
        for (const calculus::StreamBound& b : bounds.streams) {
            const obs::StreamSeries* series =
                telemetry->find(b.stream);
            if (series == nullptr || !b.bounded)
                continue;
            min_margin = std::min(
                min_margin, b.boundUs - series->worstMessageDelayUs);
        }
    }
    // Non-finite doubles serialise as null (JsonWriter contract).
    json.member("min_margin_us", min_margin);

    json.key("per_stream");
    json.beginArray();
    for (const calculus::StreamBound& b : bounds.streams) {
        json.beginObject();
        json.member("stream",
                    static_cast<std::int64_t>(b.stream.value()));
        json.member("hops", static_cast<std::int64_t>(b.hops));
        json.member("sigma_flits", b.sigmaFlits);
        json.member("rho_flits_per_us", b.rhoFlitsPerUs);
        json.member("reserved_flits_per_us", b.reservedFlitsPerUs);
        json.member("bound_us", b.boundUs);
        if (telemetry != nullptr) {
            const obs::StreamSeries* series =
                telemetry->find(b.stream);
            if (series != nullptr) {
                json.member("observed_worst_us",
                            series->worstMessageDelayUs);
            }
        }
        json.endObject();
    }
    json.endArray();
    json.endObject();
}

} // namespace

std::string
toJson(const Campaign& campaign, const ArtifactOptions& options)
{
    const auto& defs = metricDefs();
    JsonWriter json;
    json.beginObject();
    json.member("schema", kArtifactSchema);
    json.member("name", options.name);
    json.member("root_seed", campaign.config().rootSeed);
    json.member("replications", static_cast<std::int64_t>(
                                    campaign.config().replications));

    json.key("points");
    json.beginArray();
    for (const PointSummary& point : campaign.results()) {
        json.beginObject();
        json.member("label", point.label);
        json.key("metrics");
        json.beginObject();
        for (std::size_t i = 0; i < defs.size(); ++i) {
            if (!defs[i].deterministic)
                continue;
            json.key(defs[i].name);
            writeSummary(json, point.metrics[i]);
        }
        json.endObject();
        json.key("counts");
        writeCounts(json, point.first());
        const auto& obs0 = point.first().observations;
        if (obs0 != nullptr && obs0->hasTelemetry) {
            json.key("telemetry");
            writeTelemetry(json, obs0->telemetry);
        }
        const auto& bounds0 = point.first().bounds;
        if (bounds0 != nullptr) {
            json.key("bounds");
            writeBounds(json, *bounds0,
                        obs0 != nullptr && obs0->hasTelemetry
                            ? &obs0->telemetry
                            : nullptr);
        }
        json.endObject();
    }
    json.endArray();

    if (options.includeTiming) {
        json.key("timing");
        json.beginObject();
        json.member("jobs", static_cast<std::int64_t>(
                                campaign.config().effectiveJobs()));
        json.member("wall_seconds", campaign.wallSeconds());
        const double wall = campaign.wallSeconds();
        json.member("events_per_sec",
                    wall > 0.0
                        ? static_cast<double>(campaign.totalEvents())
                            / wall
                        : 0.0);
        json.key("points");
        json.beginArray();
        for (const PointSummary& point : campaign.results()) {
            json.beginObject();
            json.member("label", point.label);
            for (std::size_t i = 0; i < defs.size(); ++i) {
                if (defs[i].deterministic)
                    continue;
                json.key(defs[i].name);
                writeSummary(json, point.metrics[i]);
            }
            json.endObject();
        }
        json.endArray();
        json.endObject();
    }

    json.endObject();
    return json.str();
}

bool
writeTextFile(const std::string& path, const std::string& text)
{
    std::FILE* file = std::fopen(path.c_str(), "w");
    if (!file) {
        sim::warn("writeTextFile: cannot open '%s' for writing",
                  path.c_str());
        return false;
    }
    const std::size_t written =
        std::fwrite(text.data(), 1, text.size(), file);
    const bool ok = written == text.size()
        && std::fputc('\n', file) != EOF;
    std::fclose(file);
    if (!ok)
        sim::warn("writeTextFile: short write to '%s'", path.c_str());
    return ok;
}

bool
writeArtifact(const std::string& path, const Campaign& campaign,
              const ArtifactOptions& options)
{
    return writeTextFile(path, toJson(campaign, options));
}

} // namespace mediaworm::campaign
