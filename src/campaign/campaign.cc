#include "campaign/campaign.hh"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <mutex>

#include "campaign/seeds.hh"
#include "campaign/thread_pool.hh"
#include "sim/logging.hh"

namespace mediaworm::campaign {

int
CampaignConfig::effectiveJobs() const
{
    if (jobs < 0)
        sim::fatal("CampaignConfig: jobs must be >= 0, got %d", jobs);
    if (shardsPerJob < 1)
        sim::fatal("CampaignConfig: shardsPerJob must be >= 1, got %d",
                   shardsPerJob);
    if (jobs != 0)
        return jobs;
    return std::max(1, ThreadPool::hardwareThreads() / shardsPerJob);
}

const std::vector<MetricDef>&
metricDefs()
{
    using R = core::ExperimentResult;
    static const std::vector<MetricDef> defs = {
        {"mean_interval_ms",
         +[](const R& r) { return r.meanIntervalMs; }, true},
        {"stddev_interval_ms",
         +[](const R& r) { return r.stddevIntervalMs; }, true},
        {"mean_interval_norm_ms",
         +[](const R& r) { return r.meanIntervalNormMs; }, true},
        {"stddev_interval_norm_ms",
         +[](const R& r) { return r.stddevIntervalNormMs; }, true},
        {"be_latency_us",
         +[](const R& r) { return r.beLatencyUs; }, true},
        {"be_network_latency_us",
         +[](const R& r) { return r.beNetworkLatencyUs; }, true},
        {"be_latency_p99_us",
         +[](const R& r) { return r.beLatencyP99Us; }, true},
        {"rt_message_latency_us",
         +[](const R& r) { return r.rtMessageLatencyUs; }, true},
        {"simulated_ms",
         +[](const R& r) { return r.simulatedMs; }, true},
        {"wall_seconds",
         +[](const R& r) { return r.wallSeconds; }, false},
        {"events_per_sec",
         +[](const R& r) { return r.eventsPerSec; }, false},
    };
    return defs;
}

const MetricSummary&
PointSummary::metric(std::string_view name) const
{
    const auto& defs = metricDefs();
    for (std::size_t i = 0; i < defs.size(); ++i) {
        if (name == defs[i].name)
            return metrics[i];
    }
    sim::fatal("PointSummary: unknown metric '%.*s'",
               static_cast<int>(name.size()), name.data());
}

Campaign::Campaign(CampaignConfig cfg) : cfg_(cfg)
{
    if (cfg_.replications < 1)
        sim::fatal("Campaign: replications must be >= 1, got %d",
                   cfg_.replications);
    (void)cfg_.effectiveJobs(); // validate jobs early
}

int
Campaign::addPoint(std::string label, core::ExperimentConfig cfg)
{
    const std::uint64_t root = cfg.seed;
    return addJob(
        std::move(label),
        [cfg](std::uint64_t seed, int) {
            core::ExperimentConfig run = cfg;
            run.seed = seed;
            return core::runExperiment(run);
        },
        root);
}

int
Campaign::addJob(std::string label, Runner runner,
                 std::uint64_t seedRoot)
{
    points_.push_back({std::move(label), std::move(runner), seedRoot});
    return static_cast<int>(points_.size()) - 1;
}

void
Campaign::runOne(std::size_t point, int replication)
{
    const Point& p = points_[point];
    const std::uint64_t seed =
        deriveSeed(p.seedRoot, point,
                   static_cast<std::uint64_t>(replication));
    results_[point].reps[static_cast<std::size_t>(replication)] =
        p.runner(seed, replication);
}

const std::vector<PointSummary>&
Campaign::run()
{
    const auto start = std::chrono::steady_clock::now();
    const int reps = cfg_.replications;
    const int jobs = cfg_.effectiveJobs();
    const std::size_t total = points_.size()
        * static_cast<std::size_t>(reps);

    results_.clear();
    results_.resize(points_.size());
    for (std::size_t i = 0; i < points_.size(); ++i) {
        results_[i].label = points_[i].label;
        results_[i].reps.resize(static_cast<std::size_t>(reps));
    }

    std::mutex progressMutex;
    std::size_t done = 0;
    auto tick = [&] {
        // Called after each completed run; prints done/total + ETA.
        if (!cfg_.showProgress)
            return;
        std::lock_guard<std::mutex> lock(progressMutex);
        ++done;
        const double elapsed =
            std::chrono::duration<double>(
                std::chrono::steady_clock::now() - start)
                .count();
        const double eta = elapsed
            * static_cast<double>(total - done)
            / static_cast<double>(done);
        std::fprintf(stderr,
                     "\rcampaign: %zu/%zu runs (%.0f%%) "
                     "elapsed %.1fs eta %.1fs ",
                     done, total,
                     100.0 * static_cast<double>(done)
                         / static_cast<double>(total),
                     elapsed, eta);
        if (done == total)
            std::fputc('\n', stderr);
        std::fflush(stderr);
    };

    if (jobs == 1) {
        // Inline sequential path: identical semantics, no threads.
        for (std::size_t p = 0; p < points_.size(); ++p) {
            for (int r = 0; r < reps; ++r) {
                runOne(p, r);
                tick();
            }
        }
    } else {
        ThreadPool pool(jobs);
        for (std::size_t p = 0; p < points_.size(); ++p) {
            for (int r = 0; r < reps; ++r) {
                pool.submit([this, p, r, &tick] {
                    runOne(p, r);
                    tick();
                });
            }
        }
        pool.wait();
    }

    aggregatePoints();

    totalEvents_ = 0;
    for (const PointSummary& summary : results_)
        for (const core::ExperimentResult& r : summary.reps)
            totalEvents_ += r.eventsFired;

    wallSeconds_ = std::chrono::duration<double>(
                       std::chrono::steady_clock::now() - start)
                       .count();
    return results_;
}

void
Campaign::aggregatePoints()
{
    const auto& defs = metricDefs();
    std::vector<double> values;
    for (PointSummary& summary : results_) {
        summary.metrics.clear();
        summary.metrics.reserve(defs.size());
        for (const MetricDef& def : defs) {
            values.clear();
            for (const core::ExperimentResult& r : summary.reps)
                values.push_back(def.get(r));
            summary.metrics.push_back(aggregate(values));
        }
    }
}

} // namespace mediaworm::campaign
