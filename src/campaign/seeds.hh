/**
 * @file
 * Deterministic per-(point, replication) seed derivation.
 *
 * The campaign engine never hands the experiment a raw root seed:
 * every run gets a seed derived from (root, point index, replication
 * index) through SplitMix64 finalisation steps. Derivation depends
 * only on those three inputs - never on scheduling order - so a
 * campaign executed on one thread and on eight produces bit-identical
 * per-run results and therefore bit-identical aggregates.
 */

#ifndef MEDIAWORM_CAMPAIGN_SEEDS_HH
#define MEDIAWORM_CAMPAIGN_SEEDS_HH

#include <cstdint>

namespace mediaworm::campaign {

/**
 * SplitMix64 finalisation: bijectively mixes 64 bits (Steele, Lea &
 * Flood). Bijectivity means distinct inputs keep distinct outputs.
 */
std::uint64_t splitmix64(std::uint64_t x);

/**
 * Derives the experiment seed for replication @p replication of
 * point @p point under root seed @p root.
 *
 * Each input is separated by a full SplitMix64 mix with a
 * golden-ratio increment, so (root, point, replication) triples that
 * differ in any component give unrelated seeds, and sequential
 * indices do not produce correlated RNG streams.
 */
std::uint64_t deriveSeed(std::uint64_t root, std::uint64_t point,
                         std::uint64_t replication);

} // namespace mediaworm::campaign

#endif // MEDIAWORM_CAMPAIGN_SEEDS_HH
