/**
 * @file
 * Fixed-size worker-thread pool for fanning independent experiment
 * runs out across cores.
 *
 * Deliberately minimal: a mutex-protected FIFO of std::function
 * tasks, a wait() barrier, and join-on-destruction. Experiment runs
 * are seconds long, so queue-lock contention is irrelevant; what
 * matters is that the pool is easy to reason about for determinism
 * (tasks only ever write disjoint result slots).
 */

#ifndef MEDIAWORM_CAMPAIGN_THREAD_POOL_HH
#define MEDIAWORM_CAMPAIGN_THREAD_POOL_HH

#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace mediaworm::campaign {

/** Fixed pool of worker threads draining a shared task queue. */
class ThreadPool
{
  public:
    /**
     * Starts @p threads workers.
     * @param threads Must be >= 1; pass hardwareThreads() for "all".
     */
    explicit ThreadPool(int threads);

    /** Waits for queued tasks to finish, then joins the workers. */
    ~ThreadPool();

    ThreadPool(const ThreadPool&) = delete;
    ThreadPool& operator=(const ThreadPool&) = delete;

    /** Enqueues @p task for execution by some worker. */
    void submit(std::function<void()> task);

    /** Blocks until every submitted task has completed. */
    void wait();

    /** Number of worker threads in the pool. */
    int threads() const { return static_cast<int>(workers_.size()); }

    /** Hardware concurrency, never less than 1. */
    static int hardwareThreads();

  private:
    void workerLoop();

    std::vector<std::thread> workers_;
    std::deque<std::function<void()>> tasks_;
    std::mutex mutex_;
    std::condition_variable wake_;  ///< Signals workers: task or stop.
    std::condition_variable idle_;  ///< Signals wait(): all done.
    std::size_t unfinished_ = 0;    ///< Queued + currently running.
    bool stopping_ = false;
};

} // namespace mediaworm::campaign

#endif // MEDIAWORM_CAMPAIGN_THREAD_POOL_HH
