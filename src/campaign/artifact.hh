/**
 * @file
 * JSON artifact writer: one machine-readable file per campaign.
 *
 * Schema "mediaworm-campaign-v1":
 *
 *   {
 *     "schema": "mediaworm-campaign-v1",
 *     "name": "<campaign name>",
 *     "root_seed": <u64>,
 *     "replications": <n>,
 *     "points": [
 *       {
 *         "label": "<point label>",
 *         "metrics": {
 *           "<metric>": {"mean": x, "stddev": x, "ci95": x, "n": n},
 *           ...deterministic metrics from campaign::metricDefs()...
 *         },
 *         "counts": { ...replication-0 integer counters... }
 *       }, ...
 *     ],
 *     "timing": {            // only when options.includeTiming
 *       "jobs": <n>, "wall_seconds": x, "events_per_sec": x,
 *       "points": [{"label": ..., "wall_seconds": {...},
 *                   "events_per_sec": {...}}, ...]
 *     }
 *   }
 *
 * Everything outside "timing" is a pure function of (configurations,
 * root seed), so the artifact with includeTiming=false - and the
 * document minus its "timing" member otherwise - is byte-identical
 * across jobs=1 and jobs=N runs. The bench binaries emit this same
 * schema (BENCH_*.json), timing included, so per-PR throughput
 * trajectories can be extracted mechanically.
 */

#ifndef MEDIAWORM_CAMPAIGN_ARTIFACT_HH
#define MEDIAWORM_CAMPAIGN_ARTIFACT_HH

#include <string>

#include "campaign/campaign.hh"

namespace mediaworm::campaign {

/** Knobs for toJson()/writeArtifact(). */
struct ArtifactOptions
{
    /** Campaign name recorded in the artifact. */
    std::string name = "campaign";

    /** Emit the (non-deterministic) wall-clock timing section. */
    bool includeTiming = true;
};

/** Current artifact schema identifier. */
inline constexpr const char* kArtifactSchema =
    "mediaworm-campaign-v1";

/** Serialises a completed campaign (must have been run()). */
std::string toJson(const Campaign& campaign,
                   const ArtifactOptions& options = {});

/**
 * Writes @p text to @p path (plus trailing newline).
 * @return False (with a warn) if the file cannot be written.
 */
bool writeTextFile(const std::string& path, const std::string& text);

/** toJson() + writeTextFile() in one call. */
bool writeArtifact(const std::string& path, const Campaign& campaign,
                   const ArtifactOptions& options = {});

} // namespace mediaworm::campaign

#endif // MEDIAWORM_CAMPAIGN_ARTIFACT_HH
