/**
 * @file
 * JSON artifact writer: one machine-readable file per campaign.
 *
 * Schema "mediaworm-campaign-v3":
 *
 *   {
 *     "schema": "mediaworm-campaign-v3",
 *     "name": "<campaign name>",
 *     "root_seed": <u64>,
 *     "replications": <n>,
 *     "points": [
 *       {
 *         "label": "<point label>",
 *         "metrics": {
 *           "<metric>": {"mean": x, "stddev": x, "ci95": x, "n": n},
 *           ...deterministic metrics from campaign::metricDefs()...
 *         },
 *         "counts": { ...replication-0 integer counters... },
 *         "telemetry": {   // only when the run enabled telemetry
 *           "window_ms": x, "time_scale": x,
 *           "worst_stream": <id or -1>, "worst_sigma_d_norm_ms": x,
 *           "streams": [
 *             {"stream": <id>, "frames": n, "intervals": n,
 *              "d_norm_ms": x, "sigma_d_norm_ms": x,
 *              "series": [
 *                {"t_norm_ms": x, "frames": n, "flits": n,
 *                 "intervals": n, "d_norm_ms": x,
 *                 "sigma_d_norm_ms": x, "mbps": x}, ...]}, ...]
 *         },
 *         "bounds": {      // only when the run enabled the oracle
 *           "streams": n, "unbounded": n, "max_bound_us": x,
 *           "min_margin_us": x,   // min(bound - observed); null
 *                                 // without telemetry or finite bound
 *           "per_stream": [
 *             {"stream": <id>, "hops": n, "sigma_flits": x,
 *              "rho_flits_per_us": x, "reserved_flits_per_us": x,
 *              "bound_us": x,      // null when unbounded
 *              "observed_worst_us": x}, ...] // only with telemetry
 *         }
 *       }, ...
 *     ],
 *     "timing": {            // only when options.includeTiming
 *       "jobs": <n>, "wall_seconds": x, "events_per_sec": x,
 *       "points": [{"label": ..., "wall_seconds": {...},
 *                   "events_per_sec": {...}}, ...]
 *     }
 *   }
 *
 * Everything outside "timing" is a pure function of (configurations,
 * root seed), so the artifact with includeTiming=false - and the
 * document minus its "timing" member otherwise - is byte-identical
 * across jobs=1 and jobs=N runs. The bench binaries emit this same
 * schema (BENCH_*.json), timing included, so per-PR throughput
 * trajectories can be extracted mechanically.
 *
 * v2 was a strict superset of v1 (optional per-point "telemetry"
 * member, per-stream sliding-window series from obs::StreamTelemetry
 * taken from replication 0, re-normalised onto the paper's unscaled
 * axis); v3 is a strict superset of v2: the only change is the
 * optional per-point "bounds" member (per-stream worst-case delay
 * bounds from the calculus oracle, with observed-vs-bound margins
 * when telemetry is also present). Readers that ignore unknown
 * members parse all three generations unchanged; parseJson()
 * (json.hh) round-trips any of them.
 */

#ifndef MEDIAWORM_CAMPAIGN_ARTIFACT_HH
#define MEDIAWORM_CAMPAIGN_ARTIFACT_HH

#include <string>

#include "campaign/campaign.hh"

namespace mediaworm::campaign {

/** Knobs for toJson()/writeArtifact(). */
struct ArtifactOptions
{
    /** Campaign name recorded in the artifact. */
    std::string name = "campaign";

    /** Emit the (non-deterministic) wall-clock timing section. */
    bool includeTiming = true;
};

/** Current artifact schema identifier. */
inline constexpr const char* kArtifactSchema =
    "mediaworm-campaign-v3";

/** Serialises a completed campaign (must have been run()). */
std::string toJson(const Campaign& campaign,
                   const ArtifactOptions& options = {});

/**
 * Writes @p text to @p path (plus trailing newline).
 * @return False (with a warn) if the file cannot be written.
 */
bool writeTextFile(const std::string& path, const std::string& text);

/** toJson() + writeTextFile() in one call. */
bool writeArtifact(const std::string& path, const Campaign& campaign,
                   const ArtifactOptions& options = {});

} // namespace mediaworm::campaign

#endif // MEDIAWORM_CAMPAIGN_ARTIFACT_HH
