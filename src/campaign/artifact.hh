/**
 * @file
 * JSON artifact writer: one machine-readable file per campaign.
 *
 * Schema "mediaworm-campaign-v2":
 *
 *   {
 *     "schema": "mediaworm-campaign-v2",
 *     "name": "<campaign name>",
 *     "root_seed": <u64>,
 *     "replications": <n>,
 *     "points": [
 *       {
 *         "label": "<point label>",
 *         "metrics": {
 *           "<metric>": {"mean": x, "stddev": x, "ci95": x, "n": n},
 *           ...deterministic metrics from campaign::metricDefs()...
 *         },
 *         "counts": { ...replication-0 integer counters... },
 *         "telemetry": {   // only when the run enabled telemetry
 *           "window_ms": x, "time_scale": x,
 *           "worst_stream": <id or -1>, "worst_sigma_d_norm_ms": x,
 *           "streams": [
 *             {"stream": <id>, "frames": n, "intervals": n,
 *              "d_norm_ms": x, "sigma_d_norm_ms": x,
 *              "series": [
 *                {"t_norm_ms": x, "frames": n, "flits": n,
 *                 "intervals": n, "d_norm_ms": x,
 *                 "sigma_d_norm_ms": x, "mbps": x}, ...]}, ...]
 *         }
 *       }, ...
 *     ],
 *     "timing": {            // only when options.includeTiming
 *       "jobs": <n>, "wall_seconds": x, "events_per_sec": x,
 *       "points": [{"label": ..., "wall_seconds": {...},
 *                   "events_per_sec": {...}}, ...]
 *     }
 *   }
 *
 * Everything outside "timing" is a pure function of (configurations,
 * root seed), so the artifact with includeTiming=false - and the
 * document minus its "timing" member otherwise - is byte-identical
 * across jobs=1 and jobs=N runs. The bench binaries emit this same
 * schema (BENCH_*.json), timing included, so per-PR throughput
 * trajectories can be extracted mechanically.
 *
 * v2 is a strict superset of v1: the only change is the optional
 * per-point "telemetry" member (per-stream sliding-window series from
 * obs::StreamTelemetry, taken from replication 0, values
 * re-normalised onto the paper's unscaled-ms axis). v1 readers that
 * ignore unknown members parse v2 documents unchanged.
 */

#ifndef MEDIAWORM_CAMPAIGN_ARTIFACT_HH
#define MEDIAWORM_CAMPAIGN_ARTIFACT_HH

#include <string>

#include "campaign/campaign.hh"

namespace mediaworm::campaign {

/** Knobs for toJson()/writeArtifact(). */
struct ArtifactOptions
{
    /** Campaign name recorded in the artifact. */
    std::string name = "campaign";

    /** Emit the (non-deterministic) wall-clock timing section. */
    bool includeTiming = true;
};

/** Current artifact schema identifier. */
inline constexpr const char* kArtifactSchema =
    "mediaworm-campaign-v2";

/** Serialises a completed campaign (must have been run()). */
std::string toJson(const Campaign& campaign,
                   const ArtifactOptions& options = {});

/**
 * Writes @p text to @p path (plus trailing newline).
 * @return False (with a warn) if the file cannot be written.
 */
bool writeTextFile(const std::string& path, const std::string& text);

/** toJson() + writeTextFile() in one call. */
bool writeArtifact(const std::string& path, const Campaign& campaign,
                   const ArtifactOptions& options = {});

} // namespace mediaworm::campaign

#endif // MEDIAWORM_CAMPAIGN_ARTIFACT_HH
