/**
 * @file
 * Parallel experiment campaign engine.
 *
 * A Campaign is a list of labelled experiment points, each run
 * `replications` times with deterministically derived seeds (see
 * seeds.hh), fanned out across a worker-thread pool and aggregated
 * into per-metric mean / stddev / 95% confidence intervals.
 *
 * Determinism contract: every (point, replication) run receives a
 * seed that depends only on (point seed, point index, replication
 * index), and each run writes a pre-allocated result slot that no
 * other run touches. Aggregation walks the slots in index order.
 * Consequently a campaign's aggregates - and its JSON artifact minus
 * the timing section - are bit-identical at jobs=1 and jobs=N.
 */

#ifndef MEDIAWORM_CAMPAIGN_CAMPAIGN_HH
#define MEDIAWORM_CAMPAIGN_CAMPAIGN_HH

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "campaign/aggregate.hh"
#include "core/experiment.hh"

namespace mediaworm::campaign {

/** How a campaign executes its points. */
struct CampaignConfig
{
    /** Worker threads; 1 runs inline (the classic sequential path),
     *  0 means one per hardware thread. */
    int jobs = 1;

    /** Seed replications per point (>= 1). */
    int replications = 1;

    /** Root seed used for points that do not carry their own. */
    std::uint64_t rootSeed = 1;

    /** Live "done/total + ETA" line on stderr while running. */
    bool showProgress = false;

    /**
     * Threads each job uses internally (ExperimentConfig::shards of
     * the points being run; >= 1). Only the jobs == 0 heuristic
     * consumes it: the pool gets hardware_threads / shardsPerJob
     * workers so jobs x shards stays within the machine instead of
     * oversubscribing it. Explicit jobs values are taken as given.
     */
    int shardsPerJob = 1;

    /** Worker-thread count after resolving jobs == 0. */
    int effectiveJobs() const;
};

/**
 * One aggregatable metric of ExperimentResult.
 *
 * `deterministic` metrics depend only on the seed and configuration;
 * non-deterministic ones (wall-clock derived) are reported under the
 * artifact's timing section instead of its aggregate section.
 */
struct MetricDef
{
    const char* name; ///< snake_case key used in JSON artifacts.
    double (*get)(const core::ExperimentResult&);
    bool deterministic;
};

/** The fixed metric table shared by campaigns, benches and tools. */
const std::vector<MetricDef>& metricDefs();

/** One completed point: raw replications plus aggregates. */
struct PointSummary
{
    std::string label;

    /** Raw results, indexed by replication. */
    std::vector<core::ExperimentResult> reps;

    /** Aggregates, aligned with metricDefs(). */
    std::vector<MetricSummary> metrics;

    /** Replication 0's raw result (the jobs=1, reps=1 classic view). */
    const core::ExperimentResult& first() const { return reps.front(); }

    /** Aggregate for metric @p name; fatal if unknown. */
    const MetricSummary& metric(std::string_view name) const;

    /** Shorthand for metric(name).mean. */
    double mean(std::string_view name) const
    {
        return metric(name).mean;
    }
};

/** Runs experiment points in parallel and aggregates replications. */
class Campaign
{
  public:
    /**
     * One replication's work: run with @p seed and return the
     * measured result. @p replication is provided so adapters
     * wrapping foreign experiment types (e.g. PCS) can stash their
     * native result in a per-replication side slot.
     */
    using Runner = std::function<core::ExperimentResult(
        std::uint64_t seed, int replication)>;

    explicit Campaign(CampaignConfig cfg = {});

    /**
     * Adds a standard wormhole experiment point. The point's seed
     * root is @p cfg.seed (inherit it from the campaign root via
     * ExperimentConfig's default or set it explicitly); the seed
     * actually run is deriveSeed(cfg.seed, index, replication).
     *
     * @return The point's index (insertion order).
     */
    int addPoint(std::string label, core::ExperimentConfig cfg);

    /**
     * Adds a custom point executed through @p runner; @p seedRoot
     * feeds the same derivation as addPoint. Used to drive non-core
     * experiments (PCS) through the same pool and aggregation.
     */
    int addJob(std::string label, Runner runner,
               std::uint64_t seedRoot);

    /** Number of points added. */
    std::size_t size() const { return points_.size(); }

    const CampaignConfig& config() const { return cfg_; }

    /**
     * Runs every (point, replication) pair and aggregates.
     * @return Summaries in point insertion order.
     */
    const std::vector<PointSummary>& run();

    /** Summaries from the last run(). */
    const std::vector<PointSummary>& results() const
    {
        return results_;
    }

    /** Wall-clock duration of the last run(), in seconds. */
    double wallSeconds() const { return wallSeconds_; }

    /** Total kernel events fired across all runs of the last run(). */
    std::uint64_t totalEvents() const { return totalEvents_; }

  private:
    struct Point
    {
        std::string label;
        Runner runner;
        std::uint64_t seedRoot;
    };

    void runOne(std::size_t point, int replication);
    void aggregatePoints();

    CampaignConfig cfg_;
    std::vector<Point> points_;
    std::vector<PointSummary> results_;
    double wallSeconds_ = 0.0;
    std::uint64_t totalEvents_ = 0;
};

} // namespace mediaworm::campaign

#endif // MEDIAWORM_CAMPAIGN_CAMPAIGN_HH
