/**
 * @file
 * One-call experiment harness: build a network, offer a workload,
 * measure the paper's output parameters.
 *
 * This is the primary public API: every figure/table bench, example
 * and integration test drives the simulator through runExperiment().
 */

#ifndef MEDIAWORM_CORE_EXPERIMENT_HH
#define MEDIAWORM_CORE_EXPERIMENT_HH

#include <cstdint>
#include <memory>
#include <string>

#include "calculus/oracle.hh"
#include "config/network_config.hh"
#include "config/router_config.hh"
#include "config/traffic_config.hh"
#include "obs/observer.hh"
#include "sim/time.hh"

namespace mediaworm::core {

/** Everything that defines one experiment point. */
struct ExperimentConfig
{
    config::RouterConfig router;
    config::TrafficConfig traffic;
    config::NetworkConfig network;

    /** Root RNG seed; identical seeds give identical results. */
    std::uint64_t seed = 1;

    /**
     * Time-scale compression. The paper simulates full MPEG-2 frames
     * (16,666 B every 33 ms), gathering millions of messages per
     * point. Scaling frame size and frame interval by this factor
     * leaves per-stream bandwidth, offered load, message spacing and
     * all flit-level contention unchanged while dividing simulation
     * cost; delivery intervals simply shrink by the same factor and
     * are reported both raw and re-normalised. 1.0 reproduces the
     * paper's full-size workload.
     */
    double timeScale = 0.1;

    /** Abort the run after this much simulated time; 0 = automatic
     *  (several times the injection horizon). */
    sim::Tick maxSimTime = 0;

    /**
     * Shard count for conservative-parallel execution (sim/pdes.hh):
     * the mesh is cut into contiguous router strips, each run on its
     * own thread, synchronized with the link latency as lookahead.
     * 1 (default) is the classic single-threaded run; 0 picks one
     * shard per hardware thread. Clamped to the router count, and a
     * single switch always runs on one shard. Any value produces
     * bit-identical results - deterministicHash does not depend on
     * it (tests/test_pdes.cc enforces this).
     */
    int shards = 1;

    /**
     * Batched per-router-tick dispatch and lazy-tick elision
     * (sim::BatchSink / sim::LazyTick). On (the default) the kernel
     * coalesces same-tick events per router into one virtual
     * dispatch and skips provably-no-op multiplexer wakeups; off
     * restores the legacy per-event loop. Either setting produces
     * bit-identical results - deterministicHash does not depend on
     * it (tests/test_determinism.cc enforces this); the toggle
     * exists for differential testing and benchmarking.
     */
    bool batchedDispatch = true;

    /**
     * Idle-epoch fast-forward (sim::Simulator::setFastForward). On
     * (the default) the kernel keeps an O(1) index over elided
     * wakeups so fully idle stretches of simulated time are jumped
     * analytically instead of scanned per drain; off restores the
     * legacy always-scan path. Either setting produces bit-identical
     * results - deterministicHash does not depend on it
     * (tests/test_determinism.cc enforces this).
     */
    bool fastForward = true;

    /**
     * Observability: per-stream telemetry, flight recorder, event
     * trace. All off by default; enabling any of them changes no
     * deterministic output (see obs/observer.hh). A telemetry window
     * of 0 defaults to 4 scaled frame intervals.
     */
    obs::ObsConfig obs;

    /**
     * Network-calculus oracle: when enabled, per-stream worst-case
     * delay bounds are computed for the planned mix (pure analysis -
     * no events, no RNG draws, deterministicHash unchanged) and
     * attached to ExperimentResult::bounds.
     */
    calculus::OracleConfig calculus;
};

/** Measured outputs of one experiment point. */
struct ExperimentResult
{
    /** Mean frame delivery interval d, in (scaled) milliseconds. */
    double meanIntervalMs = 0.0;
    /** Standard deviation sigma_d, in (scaled) milliseconds. */
    double stddevIntervalMs = 0.0;

    /** d re-normalised to the unscaled frame interval, directly
     *  comparable with the paper's 33 ms axis. */
    double meanIntervalNormMs = 0.0;
    /** sigma_d re-normalised likewise. */
    double stddevIntervalNormMs = 0.0;

    /** Average best-effort message latency in microseconds. */
    double beLatencyUs = 0.0;
    /** Best-effort in-network latency (excludes host queueing). */
    double beNetworkLatencyUs = 0.0;
    /** 99th-percentile best-effort latency in microseconds. */
    double beLatencyP99Us = 0.0;
    /** Average real-time message latency in microseconds. */
    double rtMessageLatencyUs = 0.0;

    std::uint64_t intervalSamples = 0;  ///< Measured frame intervals.
    std::uint64_t framesDelivered = 0;  ///< All frames, incl. warmup.
    std::uint64_t beMessages = 0;       ///< Best-effort deliveries.
    std::uint64_t flitsDelivered = 0;   ///< All flits at sinks.
    std::uint64_t eventsFired = 0;      ///< Kernel events executed.
    /** Of eventsFired, no-op wakeups elided by sim::LazyTick: credited
     *  (never popped or fired) so hashes match the per-event path
     *  while the queue skips the traffic. Host-independent, but a
     *  dispatch-mode knob, so - like timing - excluded from the
     *  deterministic hash. */
    std::uint64_t elidedEvents = 0;
    /** Simulated ticks the kernel clock jumped over without touching
     *  the calendar ring (idle gaps between events, plus the tail up
     *  to the cap), summed over shards. Purely a reporting counter:
     *  it depends on the shard count (each shard skips its own local
     *  gaps), so - unlike eventsFired - it is excluded from the
     *  deterministic hash. */
    std::uint64_t idleTicksSkipped = 0;

    int rtStreams = 0;       ///< Real-time streams offered.
    int streamsPerNode = 0;  ///< Per-node stream count.

    double simulatedMs = 0.0; ///< Simulated time consumed.
    double wallSeconds = 0.0; ///< Host time consumed.
    /** Kernel throughput, eventsFired / wallSeconds. Depends on the
     *  host machine, not the seed - excluded from deterministic
     *  campaign aggregates, reported under their timing section. */
    double eventsPerSec = 0.0;
    bool truncated = false;   ///< Hit maxSimTime before draining.

    /**
     * Observations gathered when ExperimentConfig::obs enabled any
     * observer; null otherwise. Shared so campaign result copies stay
     * cheap. Excluded from deterministicHash() - observation must
     * never change what the digest fingerprints.
     */
    std::shared_ptr<obs::RunObservations> observations;

    /**
     * Analytic per-stream delay bounds, present when
     * ExperimentConfig::calculus was enabled; null otherwise. Like
     * observations, excluded from deterministicHash() - the oracle
     * reports on the run, it never participates in it.
     */
    std::shared_ptr<const calculus::BoundsReport> bounds;

    /** One-line human-readable summary. */
    std::string describe() const;

    /**
     * FNV-1a 64 digest over the deterministic fields (the doubles'
     * bit patterns, not rounded values), in declaration order.
     * Machine-dependent fields (wallSeconds, eventsPerSec) are
     * excluded, so for a fixed config and seed the digest is a
     * stable fingerprint of the whole simulation: any behavioural
     * change anywhere in the kernel, router, or traffic path moves
     * it. Used by the determinism regression tests.
     */
    std::uint64_t deterministicHash() const;
};

/** Runs one experiment point to completion. */
ExperimentResult runExperiment(const ExperimentConfig& cfg);

} // namespace mediaworm::core

#endif // MEDIAWORM_CORE_EXPERIMENT_HH
