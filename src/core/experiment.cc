#include "core/experiment.hh"

#include <bit>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <memory>
#include <thread>
#include <vector>

#include "network/metrics.hh"
#include "network/network.hh"
#include "network/partition.hh"
#include "obs/flight_recorder.hh"
#include "obs/telemetry.hh"
#include "sim/event.hh"
#include "sim/logging.hh"
#include "sim/pdes.hh"
#include "sim/simulator.hh"
#include "traffic/best_effort_source.hh"
#include "traffic/frame_source.hh"
#include "traffic/traffic_mix.hh"

namespace mediaworm::core {

ExperimentResult
runExperiment(const ExperimentConfig& cfg)
{
    const auto wall_start = std::chrono::steady_clock::now();

    if (cfg.timeScale <= 0.0 || cfg.timeScale > 1.0)
        sim::fatal("runExperiment: timeScale %.3f out of (0,1]",
                   cfg.timeScale);

    // Apply time-scale compression to the workload (see the field's
    // documentation); load and flit-level behaviour are unchanged.
    config::TrafficConfig traffic = cfg.traffic;
    traffic.frameBytesMean *= cfg.timeScale;
    traffic.frameBytesStddev *= cfg.timeScale;
    traffic.frameInterval = static_cast<sim::Tick>(
        static_cast<double>(traffic.frameInterval) * cfg.timeScale);

    cfg.router.validate();
    traffic.validate();
    cfg.network.validate(cfg.router.numPorts);

    // Shard plan. The flit tracer's ring is single-threaded, so any
    // trace-based observer forces the classic one-shard run.
    network::ShardPlan shard_plan = network::planShards(
        cfg.network, cfg.shards, std::thread::hardware_concurrency());
    if (!shard_plan.trivial()
        && (cfg.obs.trace || cfg.obs.flightRecorder)) {
        sim::warn("runExperiment: flit tracing requested; running on "
                  "one shard instead of %d",
                  shard_plan.numShards);
        shard_plan = network::ShardPlan{};
    }

    // Shard 0 is the root kernel: every RNG split that seeds the
    // model comes from it, in construction order, so the stream of
    // seeds is identical however many shards execute the run.
    sim::Simulator simulator(cfg.seed);
    std::vector<std::unique_ptr<sim::Simulator>> extra_sims;
    std::vector<sim::Simulator*> sims{&simulator};
    for (int s = 1; s < shard_plan.numShards; ++s) {
        extra_sims.push_back(std::make_unique<sim::Simulator>(
            cfg.seed
            ^ (0x9e3779b97f4a7c15ULL * static_cast<std::uint64_t>(s))));
        sims.push_back(extra_sims.back().get());
    }
    for (sim::Simulator* shard : sims) {
        shard->setBatchedDispatch(cfg.batchedDispatch);
        shard->setFastForward(cfg.fastForward);
    }

    network::MetricsHub metrics;
    sim::Rng net_rng = simulator.rng().split();
    network::Network net(sims, shard_plan, cfg.router, cfg.network,
                         metrics, net_rng);

    sim::Rng mix_rng = simulator.rng().split();
    traffic::MixPlan plan =
        traffic::planMix(cfg.router, traffic, net.numNodes(), mix_rng);

    // Analytic delay bounds for the planned mix. Computed before the
    // run from configuration alone: no events, no RNG draws, so the
    // simulation (and deterministicHash) is bit-identical with the
    // oracle on or off.
    std::shared_ptr<const calculus::BoundsReport> bounds;
    if (cfg.calculus.enabled) {
        bounds = std::make_shared<const calculus::BoundsReport>(
            calculus::computeBounds(cfg.router, traffic, cfg.network,
                                    plan.streams, cfg.calculus));
    }

    // Real-time sources, one per stream.
    std::vector<std::unique_ptr<traffic::FrameSource>> rt_sources;
    rt_sources.reserve(plan.streams.size());
    for (const traffic::Stream& stream : plan.streams) {
        rt_sources.push_back(std::make_unique<traffic::FrameSource>(
            net.simOfNode(stream.src.value()), stream, traffic,
            cfg.router.flitSizeBits, net.ni(stream.src.value()),
            simulator.rng().split()));
    }

    // Injection horizon: all sources stop after this time.
    const int total_frames = traffic.warmupFrames
        + traffic.measuredFrames;
    const sim::Tick horizon =
        static_cast<sim::Tick>(total_frames + 1) * traffic.frameInterval;

    // Best-effort sources, one per node.
    std::vector<std::unique_ptr<traffic::BestEffortSource>> be_sources;
    if (plan.beInterval != sim::kTickNever) {
        be_sources.reserve(static_cast<std::size_t>(net.numNodes()));
        for (int node = 0; node < net.numNodes(); ++node) {
            be_sources.push_back(
                std::make_unique<traffic::BestEffortSource>(
                    net.simOfNode(node),
                    sim::StreamId(1000000 + node), sim::NodeId(node),
                    net.numNodes(), traffic.beMessageFlits,
                    plan.beInterval, horizon,
                    plan.partition.beFirst, plan.partition.beCount,
                    net.ni(node), simulator.rng().split()));
        }
    }

    for (auto& source : rt_sources)
        source->start();
    for (auto& source : be_sources)
        source->start();

    // Steady-state measurement starts once every stream has injected
    // its warmup frames (stream phases are within one interval).
    // Gating is by record timestamp against this threshold (see
    // network/metrics.hh) - no enable event, so it costs sharded
    // runs no synchronization.
    const sim::Tick warm = static_cast<sim::Tick>(
                               traffic.warmupFrames + 1)
        * traffic.frameInterval;
    metrics.enable(warm);

    // Observability. Every observer is passive - no scheduled events,
    // no RNG draws - so enabling any of them leaves the deterministic
    // outputs (and deterministicHash) bit-identical.
    std::shared_ptr<obs::RunObservations> observations;
    std::vector<std::unique_ptr<obs::StreamTelemetry>> telemetry;
    std::unique_ptr<obs::FlightRecorder> recorder;
    if (cfg.obs.any()) {
        const std::size_t ring_capacity = cfg.obs.trace
            ? cfg.obs.traceCapacity
            : cfg.obs.flightRecorderCapacity;
        observations =
            std::make_shared<obs::RunObservations>(ring_capacity);
        if (cfg.obs.telemetry.enabled) {
            obs::TelemetryConfig tcfg = cfg.obs.telemetry;
            if (tcfg.window <= 0)
                tcfg.window = 4 * traffic.frameInterval;
            if (tcfg.measureFrom == 0)
                tcfg.measureFrom = warm;
            tcfg.flitSizeBits = cfg.router.flitSizeBits;
            // One collector per shard so observation stays lock-free;
            // the reports merge exactly after the run (windows are
            // absolute-aligned in every collector).
            for (int s = 0; s < shard_plan.numShards; ++s)
                telemetry.push_back(
                    std::make_unique<obs::StreamTelemetry>(tcfg));
            for (int node = 0; node < net.numNodes(); ++node) {
                metrics.lane(node).attachTelemetry(
                    telemetry[static_cast<std::size_t>(
                                  net.shardOfNode(node))]
                        .get());
            }
        }
        if (cfg.obs.trace || cfg.obs.flightRecorder) {
            observations->hasTrace = true;
            if (cfg.obs.traceStream.valid())
                observations->trace.filterStream(cfg.obs.traceStream);
            net.attachTracer(observations->trace);
            if (cfg.obs.flightRecorder) {
                recorder = std::make_unique<obs::FlightRecorder>(
                    observations->trace);
                recorder->arm();
            }
        }
    }

    // Run to drain, with a generous safety cap: at most several
    // injection horizons (overload backlogs drain at service rate).
    const sim::Tick cap = cfg.maxSimTime > 0
        ? cfg.maxSimTime
        : horizon * 8 + 100 * sim::kMillisecond;
    std::vector<sim::ShardRunStats> shard_stats;
    if (shard_plan.trivial()) {
        simulator.run(cap);
    } else {
        sim::PdesExecutor executor(sims, net.minCrossShardDelay());
        for (const network::Network::CrossChannel& channel :
             net.crossChannels()) {
            router::Link* link = channel.link;
            executor.addMailbox(
                channel.consumerShard,
                channel.isFlit
                    ? std::function<std::uint64_t()>(
                          [link] { return link->flushFlitOutbox(); })
                    : std::function<std::uint64_t()>(
                          [link] { return link->flushCreditOutbox(); }));
        }
        executor.run(cap);
        shard_stats = executor.stats();
    }

    ExperimentResult result;
    for (sim::Simulator* shard : sims) {
        // An elided wakeup beyond the cap counts like the queued
        // event the legacy path would have left behind.
        result.truncated |=
            !shard->queue().empty() || shard->lazyTickPending();
    }
    if (result.truncated) {
        sim::warn("runExperiment: truncated at %s with %llu flits of "
                  "host backlog",
                  sim::formatTime(cap).c_str(),
                  static_cast<unsigned long long>(
                      net.totalBacklogFlits()));
        // Unhook pending events so components tear down cleanly.
        for (sim::Simulator* shard : sims)
            shard->queue().clear();
    }

    const auto& frames = metrics.frames();
    result.meanIntervalMs = frames.meanIntervalMs();
    result.stddevIntervalMs = frames.stddevIntervalMs();
    result.meanIntervalNormMs = result.meanIntervalMs / cfg.timeScale;
    result.stddevIntervalNormMs =
        result.stddevIntervalMs / cfg.timeScale;
    result.beLatencyUs = metrics.beLatency().mean();
    result.beNetworkLatencyUs = metrics.beNetworkLatency().mean();
    result.beLatencyP99Us = metrics.beLatencyHistogram().quantile(0.99);
    result.rtMessageLatencyUs = metrics.rtMessageLatency().mean();
    result.intervalSamples = frames.sampleCount();
    result.framesDelivered = frames.framesDelivered();
    result.beMessages = metrics.beMessages();
    result.flitsDelivered = metrics.flitsDelivered();
    result.eventsFired = 0;
    result.elidedEvents = 0;
    result.idleTicksSkipped = 0;
    for (sim::Simulator* shard : sims) {
        result.eventsFired += shard->eventsFired();
        result.elidedEvents += shard->elidedEvents();
        result.idleTicksSkipped += shard->idleTicksSkipped();
    }
    result.rtStreams = static_cast<int>(plan.streams.size());
    result.streamsPerNode = plan.streamsPerNode;
    // Simulator::run(cap) leaves every shard's clock at the cap, so
    // this matches the single-threaded figure exactly.
    result.simulatedMs = sim::toMilliseconds(cap);

    if (!telemetry.empty()) {
        observations->hasTelemetry = true;
        std::vector<obs::TelemetryReport> reports;
        reports.reserve(telemetry.size());
        for (auto& collector : telemetry)
            reports.push_back(collector->finish(cap));
        observations->telemetry =
            obs::StreamTelemetry::merge(std::move(reports));
        observations->telemetry.timeScale = cfg.timeScale;
    }
    if (!shard_stats.empty()) {
        if (observations == nullptr) {
            observations = std::make_shared<obs::RunObservations>(
                cfg.obs.flightRecorderCapacity);
        }
        observations->hasShards = true;
        observations->shards = std::move(shard_stats);
    }
    result.observations = std::move(observations);
    result.bounds = std::move(bounds);

    const auto wall_end = std::chrono::steady_clock::now();
    result.wallSeconds =
        std::chrono::duration<double>(wall_end - wall_start).count();
    result.eventsPerSec = result.wallSeconds > 0.0
        ? static_cast<double>(result.eventsFired) / result.wallSeconds
        : 0.0;
    return result;
}

std::string
ExperimentResult::describe() const
{
    char buf[240];
    std::snprintf(
        buf, sizeof(buf),
        "d=%.2fms sd=%.3fms (norm d=%.2f sd=%.3f) beLat=%.1fus "
        "[%llu intervals, %llu frames, %llu BE msgs]%s",
        meanIntervalMs, stddevIntervalMs, meanIntervalNormMs,
        stddevIntervalNormMs, beLatencyUs,
        static_cast<unsigned long long>(intervalSamples),
        static_cast<unsigned long long>(framesDelivered),
        static_cast<unsigned long long>(beMessages),
        truncated ? " TRUNCATED" : "");
    return buf;
}

namespace {

/** Folds one 64-bit word into an FNV-1a state, byte by byte. */
std::uint64_t
fnv1a64(std::uint64_t h, std::uint64_t v)
{
    for (int i = 0; i < 8; ++i) {
        h ^= (v >> (8 * i)) & 0xff;
        h *= 1099511628211ULL;
    }
    return h;
}

} // namespace

std::uint64_t
ExperimentResult::deterministicHash() const
{
    std::uint64_t h = 14695981039346656037ULL;
    h = fnv1a64(h, std::bit_cast<std::uint64_t>(meanIntervalMs));
    h = fnv1a64(h, std::bit_cast<std::uint64_t>(stddevIntervalMs));
    h = fnv1a64(h, std::bit_cast<std::uint64_t>(meanIntervalNormMs));
    h = fnv1a64(h, std::bit_cast<std::uint64_t>(stddevIntervalNormMs));
    h = fnv1a64(h, std::bit_cast<std::uint64_t>(beLatencyUs));
    h = fnv1a64(h, std::bit_cast<std::uint64_t>(beNetworkLatencyUs));
    h = fnv1a64(h, std::bit_cast<std::uint64_t>(beLatencyP99Us));
    h = fnv1a64(h, std::bit_cast<std::uint64_t>(rtMessageLatencyUs));
    h = fnv1a64(h, intervalSamples);
    h = fnv1a64(h, framesDelivered);
    h = fnv1a64(h, beMessages);
    h = fnv1a64(h, flitsDelivered);
    h = fnv1a64(h, eventsFired);
    h = fnv1a64(h, static_cast<std::uint64_t>(rtStreams));
    h = fnv1a64(h, static_cast<std::uint64_t>(streamsPerNode));
    h = fnv1a64(h, std::bit_cast<std::uint64_t>(simulatedMs));
    h = fnv1a64(h, truncated ? 1u : 0u);
    return h;
}

} // namespace mediaworm::core
