/**
 * @file
 * Parameter-sweep runner: the programmatic counterpart of the bench
 * binaries. Builds a list of labelled experiment points from a base
 * configuration plus per-point modifiers and delegates execution to
 * the campaign engine (src/campaign/): points x replications fan out
 * across setJobs() worker threads with deterministic per-(point,
 * replication) seed derivation, and cross-replication aggregates
 * (mean / stddev / 95% CI) are kept alongside each row. The default
 * jobs=1, replications=1 configuration is the classic sequential
 * sweep. Results render as a table, CSV or a JSON campaign artifact.
 */

#ifndef MEDIAWORM_CORE_SWEEP_HH
#define MEDIAWORM_CORE_SWEEP_HH

#include <functional>
#include <string>
#include <vector>

#include "campaign/campaign.hh"
#include "core/experiment.hh"
#include "core/table.hh"

namespace mediaworm::core {

/** A grid of experiment points sharing a base configuration. */
class Sweep
{
  public:
    /** Mutates one point's configuration before it runs. */
    using Modifier = std::function<void(ExperimentConfig&)>;
    /** Invoked after each point completes (progress reporting). */
    using Progress =
        std::function<void(const std::string&, const ExperimentResult&)>;

    /** @param base Configuration every point starts from; its seed
     *  is the campaign root seed. */
    explicit Sweep(ExperimentConfig base);

    /**
     * Adds one point: @p modify is applied to a copy of the base
     * configuration when the sweep runs.
     */
    void addPoint(std::string label, Modifier modify);

    /**
     * Convenience axis: one point per load value, labelled with the
     * load and composed with @p modify (optional).
     */
    void addLoadAxis(const std::vector<double>& loads,
                     Modifier modify = {});

    /** Number of points added. */
    std::size_t size() const { return points_.size(); }

    /** Worker threads for run(); 1 = sequential (default), 0 = one
     *  per hardware thread. */
    void setJobs(int jobs) { jobs_ = jobs; }

    /** Seed replications per point (default 1). */
    void setReplications(int replications)
    {
        replications_ = replications;
    }

    /**
     * Shards per experiment (ExperimentConfig::shards) for every
     * point; also tells the campaign's jobs=0 heuristic to budget
     * hardware threads as jobs x shards (campaign.hh). Default 1;
     * 0 = one shard per hardware thread. Deterministic outputs are
     * shard-count invariant.
     */
    void setShards(int shards) { base_.shards = shards; }

    int jobs() const { return jobs_; }
    int replications() const { return replications_; }
    int shards() const { return base_.shards; }

    /** One completed point. */
    struct Row
    {
        std::string label;
        /** Replication 0's raw result (classic single-run view). */
        ExperimentResult result;
        /** All replications plus per-metric aggregates. */
        campaign::PointSummary summary;
    };

    /**
     * Runs every (point, replication) pair - in parallel when
     * setJobs() > 1 - and aggregates replications.
     *
     * @param progress Optional per-point callback, invoked in
     *        insertion order with replication 0's result.
     * @return All rows, in insertion order. Aggregates are
     *         bit-identical for any jobs value (see campaign.hh).
     */
    const std::vector<Row>& run(const Progress& progress = {});

    /** Rows from the last run(). */
    const std::vector<Row>& rows() const { return rows_; }

    /**
     * Renders the standard columns (label, d, sigma_d, best-effort
     * latencies, stream count, wall time, event throughput) for the
     * last run; with replications > 1 a "d ci95" error-bar column is
     * included after d.
     */
    Table toTable() const;

    /** CSV rendering of the standard columns for the last run. */
    std::string toCsv() const;

    /**
     * JSON campaign artifact (schema mediaworm-campaign-v3) for the
     * last run. With @p includeTiming false the output is a pure
     * function of configuration + root seed (byte-identical across
     * jobs settings).
     */
    std::string toJson(const std::string& name = "sweep",
                       bool includeTiming = true) const;

  private:
    struct Point
    {
        std::string label;
        Modifier modify;
    };

    ExperimentConfig base_;
    std::vector<Point> points_;
    std::vector<Row> rows_;
    /** Engine from the last run(); kept for toJson(). */
    campaign::Campaign campaign_;
    int jobs_ = 1;
    int replications_ = 1;
};

} // namespace mediaworm::core

#endif // MEDIAWORM_CORE_SWEEP_HH
