/**
 * @file
 * Parameter-sweep runner: the programmatic counterpart of the bench
 * binaries. Builds a list of labelled experiment points from a base
 * configuration plus per-point modifiers, runs them sequentially and
 * renders the standard result columns as a table or CSV.
 */

#ifndef MEDIAWORM_CORE_SWEEP_HH
#define MEDIAWORM_CORE_SWEEP_HH

#include <functional>
#include <string>
#include <vector>

#include "core/experiment.hh"
#include "core/table.hh"

namespace mediaworm::core {

/** A grid of experiment points sharing a base configuration. */
class Sweep
{
  public:
    /** Mutates one point's configuration before it runs. */
    using Modifier = std::function<void(ExperimentConfig&)>;
    /** Invoked after each point completes (progress reporting). */
    using Progress =
        std::function<void(const std::string&, const ExperimentResult&)>;

    /** @param base Configuration every point starts from. */
    explicit Sweep(ExperimentConfig base);

    /**
     * Adds one point: @p modify is applied to a copy of the base
     * configuration when the sweep runs.
     */
    void addPoint(std::string label, Modifier modify);

    /**
     * Convenience axis: one point per load value, labelled with the
     * load and composed with @p modify (optional).
     */
    void addLoadAxis(const std::vector<double>& loads,
                     Modifier modify = {});

    /** Number of points added. */
    std::size_t size() const { return points_.size(); }

    /** One completed point. */
    struct Row
    {
        std::string label;
        ExperimentResult result;
    };

    /**
     * Runs every point in order.
     *
     * @param progress Optional per-point callback.
     * @return All rows, in insertion order.
     */
    const std::vector<Row>& run(const Progress& progress = {});

    /** Rows from the last run(). */
    const std::vector<Row>& rows() const { return rows_; }

    /**
     * Renders the standard columns (label, d, sigma_d, best-effort
     * latencies, stream count) for the last run.
     */
    Table toTable() const;

    /** CSV rendering of the standard columns for the last run. */
    std::string toCsv() const;

  private:
    struct Point
    {
        std::string label;
        Modifier modify;
    };

    ExperimentConfig base_;
    std::vector<Point> points_;
    std::vector<Row> rows_;
};

} // namespace mediaworm::core

#endif // MEDIAWORM_CORE_SWEEP_HH
