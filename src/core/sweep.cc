#include "core/sweep.hh"

#include <algorithm>
#include <cstdio>

#include "campaign/artifact.hh"
#include "sim/logging.hh"

namespace mediaworm::core {

Sweep::Sweep(ExperimentConfig base) : base_(std::move(base)) {}

void
Sweep::addPoint(std::string label, Modifier modify)
{
    points_.push_back({std::move(label), std::move(modify)});
}

void
Sweep::addLoadAxis(const std::vector<double>& loads, Modifier modify)
{
    for (double load : loads) {
        char label[32];
        std::snprintf(label, sizeof(label), "load=%.2f", load);
        points_.push_back(
            {label, [load, modify](ExperimentConfig& cfg) {
                 cfg.traffic.inputLoad = load;
                 if (modify)
                     modify(cfg);
             }});
    }
}

const std::vector<Sweep::Row>&
Sweep::run(const Progress& progress)
{
    campaign::CampaignConfig ccfg;
    ccfg.jobs = jobs_;
    ccfg.replications = replications_;
    ccfg.rootSeed = base_.seed;
    // shards=0 (auto) resolves per run inside runExperiment; budget
    // the pool for at least one thread per job in that case.
    ccfg.shardsPerJob = std::max(1, base_.shards);
    campaign_ = campaign::Campaign(ccfg);

    for (const Point& point : points_) {
        ExperimentConfig cfg = base_;
        if (point.modify)
            point.modify(cfg);
        campaign_.addPoint(point.label, cfg);
    }

    const std::vector<campaign::PointSummary>& summaries =
        campaign_.run();

    rows_.clear();
    rows_.reserve(summaries.size());
    for (const campaign::PointSummary& summary : summaries) {
        Row row{summary.label, summary.first(), summary};
        if (progress)
            progress(row.label, row.result);
        rows_.push_back(std::move(row));
    }
    return rows_;
}

Table
Sweep::toTable() const
{
    const bool withCi = replications_ > 1;
    std::vector<std::string> headers{"point", "d (ms)"};
    if (withCi)
        headers.push_back("d ci95");
    for (const char* h : {"sigma_d (ms)", "BE total (us)",
                          "BE network (us)", "streams", "wall (s)",
                          "Mev/s"})
        headers.push_back(h);

    Table table(std::move(headers));
    for (const Row& row : rows_) {
        const campaign::PointSummary& s = row.summary;
        std::vector<std::string> cells{
            row.label,
            Table::num(s.mean("mean_interval_norm_ms"), 2)};
        if (withCi) {
            cells.push_back(
                "+-"
                + Table::num(s.metric("mean_interval_norm_ms").ci95,
                             3));
        }
        cells.push_back(
            Table::num(s.mean("stddev_interval_norm_ms"), 3));
        cells.push_back(Table::num(s.mean("be_latency_us"), 1));
        cells.push_back(
            Table::num(s.mean("be_network_latency_us"), 1));
        cells.push_back(Table::num(
            static_cast<std::int64_t>(row.result.rtStreams)));
        cells.push_back(Table::num(s.mean("wall_seconds"), 2));
        cells.push_back(
            Table::num(s.mean("events_per_sec") / 1e6, 2));
        table.addRow(std::move(cells));
    }
    return table;
}

std::string
Sweep::toCsv() const
{
    return toTable().toCsv();
}

std::string
Sweep::toJson(const std::string& name, bool includeTiming) const
{
    campaign::ArtifactOptions options;
    options.name = name;
    options.includeTiming = includeTiming;
    return campaign::toJson(campaign_, options);
}

} // namespace mediaworm::core
