#include "core/sweep.hh"

#include <cstdio>

#include "sim/logging.hh"

namespace mediaworm::core {

Sweep::Sweep(ExperimentConfig base) : base_(std::move(base)) {}

void
Sweep::addPoint(std::string label, Modifier modify)
{
    points_.push_back({std::move(label), std::move(modify)});
}

void
Sweep::addLoadAxis(const std::vector<double>& loads, Modifier modify)
{
    for (double load : loads) {
        char label[32];
        std::snprintf(label, sizeof(label), "load=%.2f", load);
        points_.push_back(
            {label, [load, modify](ExperimentConfig& cfg) {
                 cfg.traffic.inputLoad = load;
                 if (modify)
                     modify(cfg);
             }});
    }
}

const std::vector<Sweep::Row>&
Sweep::run(const Progress& progress)
{
    rows_.clear();
    rows_.reserve(points_.size());
    for (const Point& point : points_) {
        ExperimentConfig cfg = base_;
        if (point.modify)
            point.modify(cfg);
        Row row{point.label, runExperiment(cfg)};
        if (progress)
            progress(row.label, row.result);
        rows_.push_back(std::move(row));
    }
    return rows_;
}

Table
Sweep::toTable() const
{
    Table table({"point", "d (ms)", "sigma_d (ms)", "BE total (us)",
                 "BE network (us)", "streams"});
    for (const Row& row : rows_) {
        table.addRow(
            {row.label,
             Table::num(row.result.meanIntervalNormMs, 2),
             Table::num(row.result.stddevIntervalNormMs, 3),
             Table::num(row.result.beLatencyUs, 1),
             Table::num(row.result.beNetworkLatencyUs, 1),
             Table::num(
                 static_cast<std::int64_t>(row.result.rtStreams))});
    }
    return table;
}

std::string
Sweep::toCsv() const
{
    return toTable().toCsv();
}

} // namespace mediaworm::core
