/**
 * @file
 * Aligned text-table builder used by the benchmark binaries to print
 * the paper's tables and figure series.
 */

#ifndef MEDIAWORM_CORE_TABLE_HH
#define MEDIAWORM_CORE_TABLE_HH

#include <cstdint>
#include <string>
#include <vector>

namespace mediaworm::core {

/** Accumulates rows of strings and prints them column-aligned. */
class Table
{
  public:
    /** @param headers Column titles. */
    explicit Table(std::vector<std::string> headers);

    /** Appends a row; must match the header count. */
    void addRow(std::vector<std::string> cells);

    /** Formats a double with @p decimals places. */
    static std::string num(double value, int decimals = 2);

    /** Formats an integer. */
    static std::string num(std::int64_t value);

    /** Renders with aligned columns and a separator rule. */
    std::string toString() const;

    /** Renders as CSV. */
    std::string toCsv() const;

    /** Number of data rows. */
    std::size_t rows() const { return rows_.size(); }

  private:
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

} // namespace mediaworm::core

#endif // MEDIAWORM_CORE_TABLE_HH
