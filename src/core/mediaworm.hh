/**
 * @file
 * Umbrella public header for the MediaWorm library.
 *
 * Typical use:
 * @code
 *   #include "core/mediaworm.hh"
 *   using namespace mediaworm;
 *
 *   core::ExperimentConfig cfg;
 *   cfg.traffic.inputLoad = 0.8;
 *   cfg.traffic.realTimeFraction = 0.8; // an 80:20 VBR:BE mix
 *   auto result = core::runExperiment(cfg);
 *   // result.meanIntervalNormMs ~ 33.0 and
 *   // result.stddevIntervalNormMs ~ 0 mean jitter-free delivery.
 * @endcode
 */

#ifndef MEDIAWORM_CORE_MEDIAWORM_HH
#define MEDIAWORM_CORE_MEDIAWORM_HH

#include "calculus/curves.hh"
#include "calculus/oracle.hh"
#include "calculus/provision.hh"
#include "calculus/route_model.hh"
#include "calculus/sla_admission.hh"
#include "campaign/aggregate.hh"
#include "campaign/artifact.hh"
#include "campaign/campaign.hh"
#include "campaign/json.hh"
#include "campaign/seeds.hh"
#include "campaign/thread_pool.hh"
#include "config/network_config.hh"
#include "config/router_config.hh"
#include "config/traffic_config.hh"
#include "core/experiment.hh"
#include "core/sweep.hh"
#include "core/table.hh"
#include "network/metrics.hh"
#include "network/network.hh"
#include "network/network_interface.hh"
#include "router/flit.hh"
#include "router/link.hh"
#include "router/scheduler.hh"
#include "router/virtual_clock.hh"
#include "router/wormhole_router.hh"
#include "sim/simulator.hh"
#include "stats/accumulator.hh"
#include "stats/histogram.hh"
#include "stats/interval_tracker.hh"
#include "traffic/admission.hh"
#include "traffic/best_effort_source.hh"
#include "traffic/frame_source.hh"
#include "traffic/stream.hh"
#include "traffic/traffic_mix.hh"

#endif // MEDIAWORM_CORE_MEDIAWORM_HH
