#include "core/table.hh"

#include <algorithm>
#include <cstdio>

#include "sim/logging.hh"

namespace mediaworm::core {

Table::Table(std::vector<std::string> headers)
    : headers_(std::move(headers))
{
    MW_ASSERT(!headers_.empty());
}

void
Table::addRow(std::vector<std::string> cells)
{
    MW_ASSERT(cells.size() == headers_.size());
    rows_.push_back(std::move(cells));
}

std::string
Table::num(double value, int decimals)
{
    char buf[48];
    std::snprintf(buf, sizeof(buf), "%.*f", decimals, value);
    return buf;
}

std::string
Table::num(std::int64_t value)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%lld",
                  static_cast<long long>(value));
    return buf;
}

std::string
Table::toString() const
{
    std::vector<std::size_t> width(headers_.size());
    for (std::size_t c = 0; c < headers_.size(); ++c)
        width[c] = headers_[c].size();
    for (const auto& row : rows_) {
        for (std::size_t c = 0; c < row.size(); ++c)
            width[c] = std::max(width[c], row[c].size());
    }

    auto render_row = [&](const std::vector<std::string>& row) {
        std::string line;
        for (std::size_t c = 0; c < row.size(); ++c) {
            line += "  ";
            line.append(width[c] - row[c].size(), ' ');
            line += row[c];
        }
        line += '\n';
        return line;
    };

    std::string out = render_row(headers_);
    std::size_t total = 0;
    for (std::size_t w : width)
        total += w + 2;
    out.append(total, '-');
    out += '\n';
    for (const auto& row : rows_)
        out += render_row(row);
    return out;
}

std::string
Table::toCsv() const
{
    std::string out;
    auto render = [&](const std::vector<std::string>& row) {
        for (std::size_t c = 0; c < row.size(); ++c) {
            if (c > 0)
                out += ',';
            out += row[c];
        }
        out += '\n';
    };
    render(headers_);
    for (const auto& row : rows_)
        render(row);
    return out;
}

} // namespace mediaworm::core
