
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/config/network_config.cc" "src/CMakeFiles/mediaworm.dir/config/network_config.cc.o" "gcc" "src/CMakeFiles/mediaworm.dir/config/network_config.cc.o.d"
  "/root/repo/src/config/options.cc" "src/CMakeFiles/mediaworm.dir/config/options.cc.o" "gcc" "src/CMakeFiles/mediaworm.dir/config/options.cc.o.d"
  "/root/repo/src/config/router_config.cc" "src/CMakeFiles/mediaworm.dir/config/router_config.cc.o" "gcc" "src/CMakeFiles/mediaworm.dir/config/router_config.cc.o.d"
  "/root/repo/src/config/traffic_config.cc" "src/CMakeFiles/mediaworm.dir/config/traffic_config.cc.o" "gcc" "src/CMakeFiles/mediaworm.dir/config/traffic_config.cc.o.d"
  "/root/repo/src/core/experiment.cc" "src/CMakeFiles/mediaworm.dir/core/experiment.cc.o" "gcc" "src/CMakeFiles/mediaworm.dir/core/experiment.cc.o.d"
  "/root/repo/src/core/sweep.cc" "src/CMakeFiles/mediaworm.dir/core/sweep.cc.o" "gcc" "src/CMakeFiles/mediaworm.dir/core/sweep.cc.o.d"
  "/root/repo/src/core/table.cc" "src/CMakeFiles/mediaworm.dir/core/table.cc.o" "gcc" "src/CMakeFiles/mediaworm.dir/core/table.cc.o.d"
  "/root/repo/src/network/network.cc" "src/CMakeFiles/mediaworm.dir/network/network.cc.o" "gcc" "src/CMakeFiles/mediaworm.dir/network/network.cc.o.d"
  "/root/repo/src/network/network_interface.cc" "src/CMakeFiles/mediaworm.dir/network/network_interface.cc.o" "gcc" "src/CMakeFiles/mediaworm.dir/network/network_interface.cc.o.d"
  "/root/repo/src/pcs/connection_table.cc" "src/CMakeFiles/mediaworm.dir/pcs/connection_table.cc.o" "gcc" "src/CMakeFiles/mediaworm.dir/pcs/connection_table.cc.o.d"
  "/root/repo/src/pcs/pcs_config.cc" "src/CMakeFiles/mediaworm.dir/pcs/pcs_config.cc.o" "gcc" "src/CMakeFiles/mediaworm.dir/pcs/pcs_config.cc.o.d"
  "/root/repo/src/pcs/pcs_experiment.cc" "src/CMakeFiles/mediaworm.dir/pcs/pcs_experiment.cc.o" "gcc" "src/CMakeFiles/mediaworm.dir/pcs/pcs_experiment.cc.o.d"
  "/root/repo/src/pcs/pcs_network.cc" "src/CMakeFiles/mediaworm.dir/pcs/pcs_network.cc.o" "gcc" "src/CMakeFiles/mediaworm.dir/pcs/pcs_network.cc.o.d"
  "/root/repo/src/router/flit.cc" "src/CMakeFiles/mediaworm.dir/router/flit.cc.o" "gcc" "src/CMakeFiles/mediaworm.dir/router/flit.cc.o.d"
  "/root/repo/src/router/link.cc" "src/CMakeFiles/mediaworm.dir/router/link.cc.o" "gcc" "src/CMakeFiles/mediaworm.dir/router/link.cc.o.d"
  "/root/repo/src/router/scheduler.cc" "src/CMakeFiles/mediaworm.dir/router/scheduler.cc.o" "gcc" "src/CMakeFiles/mediaworm.dir/router/scheduler.cc.o.d"
  "/root/repo/src/router/wormhole_router.cc" "src/CMakeFiles/mediaworm.dir/router/wormhole_router.cc.o" "gcc" "src/CMakeFiles/mediaworm.dir/router/wormhole_router.cc.o.d"
  "/root/repo/src/sim/distributions.cc" "src/CMakeFiles/mediaworm.dir/sim/distributions.cc.o" "gcc" "src/CMakeFiles/mediaworm.dir/sim/distributions.cc.o.d"
  "/root/repo/src/sim/event_queue.cc" "src/CMakeFiles/mediaworm.dir/sim/event_queue.cc.o" "gcc" "src/CMakeFiles/mediaworm.dir/sim/event_queue.cc.o.d"
  "/root/repo/src/sim/logging.cc" "src/CMakeFiles/mediaworm.dir/sim/logging.cc.o" "gcc" "src/CMakeFiles/mediaworm.dir/sim/logging.cc.o.d"
  "/root/repo/src/sim/random.cc" "src/CMakeFiles/mediaworm.dir/sim/random.cc.o" "gcc" "src/CMakeFiles/mediaworm.dir/sim/random.cc.o.d"
  "/root/repo/src/sim/simulator.cc" "src/CMakeFiles/mediaworm.dir/sim/simulator.cc.o" "gcc" "src/CMakeFiles/mediaworm.dir/sim/simulator.cc.o.d"
  "/root/repo/src/sim/time.cc" "src/CMakeFiles/mediaworm.dir/sim/time.cc.o" "gcc" "src/CMakeFiles/mediaworm.dir/sim/time.cc.o.d"
  "/root/repo/src/sim/tracer.cc" "src/CMakeFiles/mediaworm.dir/sim/tracer.cc.o" "gcc" "src/CMakeFiles/mediaworm.dir/sim/tracer.cc.o.d"
  "/root/repo/src/stats/accumulator.cc" "src/CMakeFiles/mediaworm.dir/stats/accumulator.cc.o" "gcc" "src/CMakeFiles/mediaworm.dir/stats/accumulator.cc.o.d"
  "/root/repo/src/stats/histogram.cc" "src/CMakeFiles/mediaworm.dir/stats/histogram.cc.o" "gcc" "src/CMakeFiles/mediaworm.dir/stats/histogram.cc.o.d"
  "/root/repo/src/stats/interval_tracker.cc" "src/CMakeFiles/mediaworm.dir/stats/interval_tracker.cc.o" "gcc" "src/CMakeFiles/mediaworm.dir/stats/interval_tracker.cc.o.d"
  "/root/repo/src/stats/registry.cc" "src/CMakeFiles/mediaworm.dir/stats/registry.cc.o" "gcc" "src/CMakeFiles/mediaworm.dir/stats/registry.cc.o.d"
  "/root/repo/src/traffic/admission.cc" "src/CMakeFiles/mediaworm.dir/traffic/admission.cc.o" "gcc" "src/CMakeFiles/mediaworm.dir/traffic/admission.cc.o.d"
  "/root/repo/src/traffic/best_effort_source.cc" "src/CMakeFiles/mediaworm.dir/traffic/best_effort_source.cc.o" "gcc" "src/CMakeFiles/mediaworm.dir/traffic/best_effort_source.cc.o.d"
  "/root/repo/src/traffic/frame_source.cc" "src/CMakeFiles/mediaworm.dir/traffic/frame_source.cc.o" "gcc" "src/CMakeFiles/mediaworm.dir/traffic/frame_source.cc.o.d"
  "/root/repo/src/traffic/traffic_mix.cc" "src/CMakeFiles/mediaworm.dir/traffic/traffic_mix.cc.o" "gcc" "src/CMakeFiles/mediaworm.dir/traffic/traffic_mix.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
