# Empty dependencies file for mediaworm.
# This may be replaced when dependencies are built.
