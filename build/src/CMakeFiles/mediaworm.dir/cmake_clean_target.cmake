file(REMOVE_RECURSE
  "libmediaworm.a"
)
