# Empty dependencies file for example_fat_mesh_cluster.
# This may be replaced when dependencies are built.
