file(REMOVE_RECURSE
  "CMakeFiles/example_fat_mesh_cluster.dir/fat_mesh_cluster.cpp.o"
  "CMakeFiles/example_fat_mesh_cluster.dir/fat_mesh_cluster.cpp.o.d"
  "example_fat_mesh_cluster"
  "example_fat_mesh_cluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_fat_mesh_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
