# Empty dependencies file for example_mixed_cluster.
# This may be replaced when dependencies are built.
