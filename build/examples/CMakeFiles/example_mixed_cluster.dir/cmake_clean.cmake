file(REMOVE_RECURSE
  "CMakeFiles/example_mixed_cluster.dir/mixed_cluster.cpp.o"
  "CMakeFiles/example_mixed_cluster.dir/mixed_cluster.cpp.o.d"
  "example_mixed_cluster"
  "example_mixed_cluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_mixed_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
