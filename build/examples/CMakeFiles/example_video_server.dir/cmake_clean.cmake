file(REMOVE_RECURSE
  "CMakeFiles/example_video_server.dir/video_server.cpp.o"
  "CMakeFiles/example_video_server.dir/video_server.cpp.o.d"
  "example_video_server"
  "example_video_server.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_video_server.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
