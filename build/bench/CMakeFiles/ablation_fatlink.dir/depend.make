# Empty dependencies file for ablation_fatlink.
# This may be replaced when dependencies are built.
