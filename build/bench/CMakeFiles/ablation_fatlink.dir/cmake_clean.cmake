file(REMOVE_RECURSE
  "CMakeFiles/ablation_fatlink.dir/ablation_fatlink.cc.o"
  "CMakeFiles/ablation_fatlink.dir/ablation_fatlink.cc.o.d"
  "ablation_fatlink"
  "ablation_fatlink.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_fatlink.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
