file(REMOVE_RECURSE
  "CMakeFiles/fig6_vc_crossbar.dir/fig6_vc_crossbar.cc.o"
  "CMakeFiles/fig6_vc_crossbar.dir/fig6_vc_crossbar.cc.o.d"
  "fig6_vc_crossbar"
  "fig6_vc_crossbar.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_vc_crossbar.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
