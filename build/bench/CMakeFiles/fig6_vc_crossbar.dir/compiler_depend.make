# Empty compiler generated dependencies file for fig6_vc_crossbar.
# This may be replaced when dependencies are built.
