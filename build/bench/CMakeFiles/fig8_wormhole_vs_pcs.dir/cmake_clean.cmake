file(REMOVE_RECURSE
  "CMakeFiles/fig8_wormhole_vs_pcs.dir/fig8_wormhole_vs_pcs.cc.o"
  "CMakeFiles/fig8_wormhole_vs_pcs.dir/fig8_wormhole_vs_pcs.cc.o.d"
  "fig8_wormhole_vs_pcs"
  "fig8_wormhole_vs_pcs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_wormhole_vs_pcs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
