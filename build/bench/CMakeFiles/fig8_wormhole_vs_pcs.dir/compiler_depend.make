# Empty compiler generated dependencies file for fig8_wormhole_vs_pcs.
# This may be replaced when dependencies are built.
