file(REMOVE_RECURSE
  "CMakeFiles/table3_pcs_drops.dir/table3_pcs_drops.cc.o"
  "CMakeFiles/table3_pcs_drops.dir/table3_pcs_drops.cc.o.d"
  "table3_pcs_drops"
  "table3_pcs_drops.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_pcs_drops.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
