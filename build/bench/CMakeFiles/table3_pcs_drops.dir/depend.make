# Empty dependencies file for table3_pcs_drops.
# This may be replaced when dependencies are built.
