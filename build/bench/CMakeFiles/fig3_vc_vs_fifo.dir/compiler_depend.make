# Empty compiler generated dependencies file for fig3_vc_vs_fifo.
# This may be replaced when dependencies are built.
