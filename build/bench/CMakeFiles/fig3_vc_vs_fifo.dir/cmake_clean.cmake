file(REMOVE_RECURSE
  "CMakeFiles/fig3_vc_vs_fifo.dir/fig3_vc_vs_fifo.cc.o"
  "CMakeFiles/fig3_vc_vs_fifo.dir/fig3_vc_vs_fifo.cc.o.d"
  "fig3_vc_vs_fifo"
  "fig3_vc_vs_fifo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_vc_vs_fifo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
