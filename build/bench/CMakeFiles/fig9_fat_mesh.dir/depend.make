# Empty dependencies file for fig9_fat_mesh.
# This may be replaced when dependencies are built.
