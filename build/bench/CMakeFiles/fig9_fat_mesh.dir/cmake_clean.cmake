file(REMOVE_RECURSE
  "CMakeFiles/fig9_fat_mesh.dir/fig9_fat_mesh.cc.o"
  "CMakeFiles/fig9_fat_mesh.dir/fig9_fat_mesh.cc.o.d"
  "fig9_fat_mesh"
  "fig9_fat_mesh.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_fat_mesh.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
