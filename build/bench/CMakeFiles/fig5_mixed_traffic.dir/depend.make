# Empty dependencies file for fig5_mixed_traffic.
# This may be replaced when dependencies are built.
