file(REMOVE_RECURSE
  "CMakeFiles/fig7_message_size.dir/fig7_message_size.cc.o"
  "CMakeFiles/fig7_message_size.dir/fig7_message_size.cc.o.d"
  "fig7_message_size"
  "fig7_message_size.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_message_size.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
