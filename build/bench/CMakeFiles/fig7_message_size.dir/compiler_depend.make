# Empty compiler generated dependencies file for fig7_message_size.
# This may be replaced when dependencies are built.
