file(REMOVE_RECURSE
  "CMakeFiles/table2_best_effort.dir/table2_best_effort.cc.o"
  "CMakeFiles/table2_best_effort.dir/table2_best_effort.cc.o.d"
  "table2_best_effort"
  "table2_best_effort.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_best_effort.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
