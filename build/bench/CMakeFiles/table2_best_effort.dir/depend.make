# Empty dependencies file for table2_best_effort.
# This may be replaced when dependencies are built.
