file(REMOVE_RECURSE
  "CMakeFiles/fig4_cbr_vbr.dir/fig4_cbr_vbr.cc.o"
  "CMakeFiles/fig4_cbr_vbr.dir/fig4_cbr_vbr.cc.o.d"
  "fig4_cbr_vbr"
  "fig4_cbr_vbr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_cbr_vbr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
