# Empty compiler generated dependencies file for mediaworm_sim.
# This may be replaced when dependencies are built.
