file(REMOVE_RECURSE
  "CMakeFiles/mediaworm_sim.dir/mediaworm_sim.cc.o"
  "CMakeFiles/mediaworm_sim.dir/mediaworm_sim.cc.o.d"
  "mediaworm_sim"
  "mediaworm_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mediaworm_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
