
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_admission.cc" "tests/CMakeFiles/mediaworm_tests.dir/test_admission.cc.o" "gcc" "tests/CMakeFiles/mediaworm_tests.dir/test_admission.cc.o.d"
  "/root/repo/tests/test_best_effort_source.cc" "tests/CMakeFiles/mediaworm_tests.dir/test_best_effort_source.cc.o" "gcc" "tests/CMakeFiles/mediaworm_tests.dir/test_best_effort_source.cc.o.d"
  "/root/repo/tests/test_configs.cc" "tests/CMakeFiles/mediaworm_tests.dir/test_configs.cc.o" "gcc" "tests/CMakeFiles/mediaworm_tests.dir/test_configs.cc.o.d"
  "/root/repo/tests/test_distributions.cc" "tests/CMakeFiles/mediaworm_tests.dir/test_distributions.cc.o" "gcc" "tests/CMakeFiles/mediaworm_tests.dir/test_distributions.cc.o.d"
  "/root/repo/tests/test_event_queue.cc" "tests/CMakeFiles/mediaworm_tests.dir/test_event_queue.cc.o" "gcc" "tests/CMakeFiles/mediaworm_tests.dir/test_event_queue.cc.o.d"
  "/root/repo/tests/test_experiment.cc" "tests/CMakeFiles/mediaworm_tests.dir/test_experiment.cc.o" "gcc" "tests/CMakeFiles/mediaworm_tests.dir/test_experiment.cc.o.d"
  "/root/repo/tests/test_flit_buffer.cc" "tests/CMakeFiles/mediaworm_tests.dir/test_flit_buffer.cc.o" "gcc" "tests/CMakeFiles/mediaworm_tests.dir/test_flit_buffer.cc.o.d"
  "/root/repo/tests/test_frame_source.cc" "tests/CMakeFiles/mediaworm_tests.dir/test_frame_source.cc.o" "gcc" "tests/CMakeFiles/mediaworm_tests.dir/test_frame_source.cc.o.d"
  "/root/repo/tests/test_fuzz.cc" "tests/CMakeFiles/mediaworm_tests.dir/test_fuzz.cc.o" "gcc" "tests/CMakeFiles/mediaworm_tests.dir/test_fuzz.cc.o.d"
  "/root/repo/tests/test_ids.cc" "tests/CMakeFiles/mediaworm_tests.dir/test_ids.cc.o" "gcc" "tests/CMakeFiles/mediaworm_tests.dir/test_ids.cc.o.d"
  "/root/repo/tests/test_integration.cc" "tests/CMakeFiles/mediaworm_tests.dir/test_integration.cc.o" "gcc" "tests/CMakeFiles/mediaworm_tests.dir/test_integration.cc.o.d"
  "/root/repo/tests/test_link.cc" "tests/CMakeFiles/mediaworm_tests.dir/test_link.cc.o" "gcc" "tests/CMakeFiles/mediaworm_tests.dir/test_link.cc.o.d"
  "/root/repo/tests/test_network.cc" "tests/CMakeFiles/mediaworm_tests.dir/test_network.cc.o" "gcc" "tests/CMakeFiles/mediaworm_tests.dir/test_network.cc.o.d"
  "/root/repo/tests/test_network_interface.cc" "tests/CMakeFiles/mediaworm_tests.dir/test_network_interface.cc.o" "gcc" "tests/CMakeFiles/mediaworm_tests.dir/test_network_interface.cc.o.d"
  "/root/repo/tests/test_options.cc" "tests/CMakeFiles/mediaworm_tests.dir/test_options.cc.o" "gcc" "tests/CMakeFiles/mediaworm_tests.dir/test_options.cc.o.d"
  "/root/repo/tests/test_pcs.cc" "tests/CMakeFiles/mediaworm_tests.dir/test_pcs.cc.o" "gcc" "tests/CMakeFiles/mediaworm_tests.dir/test_pcs.cc.o.d"
  "/root/repo/tests/test_properties.cc" "tests/CMakeFiles/mediaworm_tests.dir/test_properties.cc.o" "gcc" "tests/CMakeFiles/mediaworm_tests.dir/test_properties.cc.o.d"
  "/root/repo/tests/test_random.cc" "tests/CMakeFiles/mediaworm_tests.dir/test_random.cc.o" "gcc" "tests/CMakeFiles/mediaworm_tests.dir/test_random.cc.o.d"
  "/root/repo/tests/test_router.cc" "tests/CMakeFiles/mediaworm_tests.dir/test_router.cc.o" "gcc" "tests/CMakeFiles/mediaworm_tests.dir/test_router.cc.o.d"
  "/root/repo/tests/test_scheduler.cc" "tests/CMakeFiles/mediaworm_tests.dir/test_scheduler.cc.o" "gcc" "tests/CMakeFiles/mediaworm_tests.dir/test_scheduler.cc.o.d"
  "/root/repo/tests/test_simulator.cc" "tests/CMakeFiles/mediaworm_tests.dir/test_simulator.cc.o" "gcc" "tests/CMakeFiles/mediaworm_tests.dir/test_simulator.cc.o.d"
  "/root/repo/tests/test_smoke.cc" "tests/CMakeFiles/mediaworm_tests.dir/test_smoke.cc.o" "gcc" "tests/CMakeFiles/mediaworm_tests.dir/test_smoke.cc.o.d"
  "/root/repo/tests/test_stats.cc" "tests/CMakeFiles/mediaworm_tests.dir/test_stats.cc.o" "gcc" "tests/CMakeFiles/mediaworm_tests.dir/test_stats.cc.o.d"
  "/root/repo/tests/test_stats_wiring.cc" "tests/CMakeFiles/mediaworm_tests.dir/test_stats_wiring.cc.o" "gcc" "tests/CMakeFiles/mediaworm_tests.dir/test_stats_wiring.cc.o.d"
  "/root/repo/tests/test_sweep.cc" "tests/CMakeFiles/mediaworm_tests.dir/test_sweep.cc.o" "gcc" "tests/CMakeFiles/mediaworm_tests.dir/test_sweep.cc.o.d"
  "/root/repo/tests/test_table.cc" "tests/CMakeFiles/mediaworm_tests.dir/test_table.cc.o" "gcc" "tests/CMakeFiles/mediaworm_tests.dir/test_table.cc.o.d"
  "/root/repo/tests/test_time.cc" "tests/CMakeFiles/mediaworm_tests.dir/test_time.cc.o" "gcc" "tests/CMakeFiles/mediaworm_tests.dir/test_time.cc.o.d"
  "/root/repo/tests/test_tracer.cc" "tests/CMakeFiles/mediaworm_tests.dir/test_tracer.cc.o" "gcc" "tests/CMakeFiles/mediaworm_tests.dir/test_tracer.cc.o.d"
  "/root/repo/tests/test_traffic_mix.cc" "tests/CMakeFiles/mediaworm_tests.dir/test_traffic_mix.cc.o" "gcc" "tests/CMakeFiles/mediaworm_tests.dir/test_traffic_mix.cc.o.d"
  "/root/repo/tests/test_vct.cc" "tests/CMakeFiles/mediaworm_tests.dir/test_vct.cc.o" "gcc" "tests/CMakeFiles/mediaworm_tests.dir/test_vct.cc.o.d"
  "/root/repo/tests/test_virtual_clock.cc" "tests/CMakeFiles/mediaworm_tests.dir/test_virtual_clock.cc.o" "gcc" "tests/CMakeFiles/mediaworm_tests.dir/test_virtual_clock.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/mediaworm.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
