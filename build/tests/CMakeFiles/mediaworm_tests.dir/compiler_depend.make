# Empty compiler generated dependencies file for mediaworm_tests.
# This may be replaced when dependencies are built.
