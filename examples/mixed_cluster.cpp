/**
 * @file
 * Mixed-workload exploration with CSV output.
 *
 * A cluster carries video (VBR), sensor feeds (CBR) and bulk
 * best-effort traffic. This example compares scheduling disciplines
 * across traffic mixes and emits machine-readable CSV, showing how
 * to drive the library programmatically for design-space studies.
 *
 * Run: ./build/examples/example_mixed_cluster [> results.csv]
 */

#include <cstdio>

#include "core/mediaworm.hh"

int
main()
{
    using namespace mediaworm;

    core::Table csv({"scheduler", "rt_kind", "mix_rt", "load",
                     "d_ms", "sigma_d_ms", "be_latency_us",
                     "be_network_us"});

    for (auto sched : {config::SchedulerKind::VirtualClock,
                       config::SchedulerKind::Fifo}) {
        for (auto kind : {config::RealTimeKind::Vbr,
                          config::RealTimeKind::Cbr}) {
            for (double mix : {0.5, 0.8}) {
                for (double load : {0.7, 0.9}) {
                    core::ExperimentConfig cfg;
                    cfg.router.scheduler = sched;
                    cfg.traffic.realTimeKind = kind;
                    cfg.traffic.realTimeFraction = mix;
                    cfg.traffic.inputLoad = load;
                    cfg.traffic.warmupFrames = 2;
                    cfg.traffic.measuredFrames = 5;

                    const core::ExperimentResult r =
                        core::runExperiment(cfg);
                    csv.addRow(
                        {config::toString(sched),
                         config::toString(kind),
                         core::Table::num(mix, 2),
                         core::Table::num(load, 2),
                         core::Table::num(r.meanIntervalNormMs, 3),
                         core::Table::num(r.stddevIntervalNormMs, 3),
                         core::Table::num(r.beLatencyUs, 1),
                         core::Table::num(r.beNetworkLatencyUs, 1)});
                    std::fprintf(stderr, ".");
                }
            }
        }
    }
    std::fprintf(stderr, "\n");

    // CSV on stdout for piping into a plotting tool.
    std::printf("%s", csv.toCsv().c_str());

    std::fprintf(stderr,
                 "\n%zu experiment points written as CSV. Pipe stdout "
                 "to a file and plot\nsigma_d_ms vs load per "
                 "scheduler to see the MediaWorm effect.\n",
                 csv.rows());
    return 0;
}
