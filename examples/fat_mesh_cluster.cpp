/**
 * @file
 * Fat-mesh cluster walkthrough.
 *
 * Builds the paper's 2x2 fat-mesh (four 8-port switches, two
 * parallel links between neighbours, sixteen endpoints) at the
 * component level - network, metrics, traffic plan, sources - rather
 * than through the one-call harness, showing how the pieces compose
 * and how to read per-link utilization afterwards.
 *
 * Run: ./build/examples/example_fat_mesh_cluster
 */

#include <cstdio>
#include <memory>
#include <vector>

#include "core/mediaworm.hh"

int
main()
{
    using namespace mediaworm;
    using sim::Tick;

    // --- configure --------------------------------------------------------
    config::RouterConfig router_cfg; // Table 1 defaults
    config::NetworkConfig net_cfg;
    net_cfg.topology = config::TopologyKind::FatMesh;
    net_cfg.meshWidth = 2;
    net_cfg.meshHeight = 2;
    net_cfg.fatFactor = 2;
    net_cfg.endpointsPerSwitch = 4;

    config::TrafficConfig traffic_cfg;
    traffic_cfg.inputLoad = 0.8;
    traffic_cfg.realTimeFraction = 0.6; // 60:40 VBR : best-effort
    traffic_cfg.warmupFrames = 2;
    traffic_cfg.measuredFrames = 6;
    // Compress the MPEG-2 workload 10x (see DESIGN.md).
    traffic_cfg.frameBytesMean *= 0.1;
    traffic_cfg.frameBytesStddev *= 0.1;
    traffic_cfg.frameInterval /= 10;

    // --- build ------------------------------------------------------------
    sim::Simulator simulator(/*seed=*/2026);
    network::MetricsHub metrics;
    sim::Rng net_rng = simulator.rng().split();
    network::Network net(simulator, router_cfg, net_cfg, metrics,
                         net_rng);
    std::printf("Built %s with %d endpoints on %d switches.\n",
                net_cfg.describe().c_str(), net.numNodes(),
                net.numRouters());

    sim::Rng mix_rng = simulator.rng().split();
    traffic::MixPlan plan = traffic::planMix(router_cfg, traffic_cfg,
                                             net.numNodes(), mix_rng);
    std::printf("Workload: %s\n\n", plan.describe().c_str());

    std::vector<std::unique_ptr<traffic::FrameSource>> sources;
    for (const traffic::Stream& stream : plan.streams) {
        sources.push_back(std::make_unique<traffic::FrameSource>(
            simulator, stream, traffic_cfg, router_cfg.flitSizeBits,
            net.ni(stream.src.value()), simulator.rng().split()));
        sources.back()->start();
    }
    const Tick horizon = static_cast<Tick>(traffic_cfg.warmupFrames
                                           + traffic_cfg.measuredFrames
                                           + 1)
        * traffic_cfg.frameInterval;
    std::vector<std::unique_ptr<traffic::BestEffortSource>> be_sources;
    for (int node = 0; node < net.numNodes(); ++node) {
        be_sources.push_back(
            std::make_unique<traffic::BestEffortSource>(
                simulator, sim::StreamId(1000000 + node),
                sim::NodeId(node), net.numNodes(),
                traffic_cfg.beMessageFlits, plan.beInterval, horizon,
                plan.partition.beFirst, plan.partition.beCount,
                net.ni(node), simulator.rng().split()));
        be_sources.back()->start();
    }

    // --- run ---------------------------------------------------------------
    sim::CallbackEvent enable(
        [&] { metrics.enable(simulator.now()); }, "enable");
    simulator.schedule(enable,
                       static_cast<Tick>(traffic_cfg.warmupFrames + 1)
                           * traffic_cfg.frameInterval);
    simulator.runToCompletion();

    // --- report -------------------------------------------------------------
    std::printf("Simulated %s, %llu events.\n",
                sim::formatTime(simulator.now()).c_str(),
                static_cast<unsigned long long>(
                    simulator.eventsFired()));
    std::printf("VBR: d = %.2f ms, sigma_d = %.3f ms over %llu "
                "intervals\n",
                metrics.frames().meanIntervalMs() * 10,
                metrics.frames().stddevIntervalMs() * 10,
                static_cast<unsigned long long>(
                    metrics.frames().sampleCount()));
    std::printf("Best-effort: %.1f us average latency (%.1f us "
                "in-network)\n\n",
                metrics.beLatency().mean(),
                metrics.beNetworkLatency().mean());

    core::Table links({"link", "flits", "utilization"});
    for (const auto& link : net.links()) {
        if (link->name().find("sw") != 0)
            continue; // only inter-switch fat channels
        links.addRow(
            {link->name(),
             core::Table::num(static_cast<std::int64_t>(
                 link->flitRate().count())),
             core::Table::num(link->flitRate().utilization(
                                  simulator.now(),
                                  router_cfg.cycleTime()),
                              3)});
    }
    std::printf("Inter-switch fat-channel usage (least-loaded "
                "selection):\n%s",
                links.toString().c_str());
    return 0;
}
