/**
 * @file
 * Video-on-demand admission planning.
 *
 * A VOD cluster operator wants to know how many concurrent MPEG-2
 * streams an 8-port MediaWorm switch can admit per node while
 * keeping delivery jitter-free and leaving headroom for best-effort
 * control traffic. This example walks the admission question the
 * paper's conclusions pose: sweep the stream count per node, watch
 * sigma_d, and report the admissible region.
 *
 * Run: ./build/examples/example_video_server
 */

#include <cstdio>

#include "core/mediaworm.hh"

namespace {

/** Jitter budget: one tenth of a frame period. */
constexpr double kSigmaBudgetMs = 3.3;

} // namespace

int
main()
{
    using namespace mediaworm;

    std::printf("VOD admission sweep: 8x8 MediaWorm switch, 16 VCs, "
                "400 Mbps links,\n4 Mbps MPEG-2 streams + 10%% "
                "best-effort control traffic\n\n");

    core::Table table({"streams/node", "offered load", "d (ms)",
                       "sigma_d (ms)", "BE latency (us)", "verdict"});

    const double stream_rate_mbps = 4.04; // 16,666 B / 33 ms
    int last_admissible = 0;

    for (int streams : {24, 40, 56, 64, 72, 80, 88}) {
        // Real-time share of load implied by the stream count; add
        // a fixed 10% best-effort component on top.
        const double rt_load = streams * stream_rate_mbps / 400.0;
        const double load = rt_load + 0.10;

        core::ExperimentConfig cfg;
        cfg.traffic.inputLoad = load;
        cfg.traffic.realTimeFraction = rt_load / load;
        cfg.traffic.warmupFrames = 2;
        cfg.traffic.measuredFrames = 6;

        const core::ExperimentResult r = core::runExperiment(cfg);
        const bool ok = r.stddevIntervalNormMs < kSigmaBudgetMs
            && r.meanIntervalNormMs < 34.0;
        if (ok)
            last_admissible = streams;

        table.addRow(
            {core::Table::num(static_cast<std::int64_t>(streams)),
             core::Table::num(load, 2),
             core::Table::num(r.meanIntervalNormMs, 2),
             core::Table::num(r.stddevIntervalNormMs, 3),
             core::Table::num(r.beLatencyUs, 1),
             ok ? "admit" : "REJECT"});
    }

    std::printf("%s\n", table.toString().c_str());
    std::printf("Admission controller verdict: up to %d streams per "
                "node (%d cluster-wide)\nstay within the %.1f ms "
                "jitter budget.\n",
                last_admissible, last_admissible * 8, kSigmaBudgetMs);
    return 0;
}
