/**
 * @file
 * Quickstart: sweep input load on an 8-port MediaWorm switch with an
 * 80:20 VBR:best-effort mix and watch jitter appear as the link
 * saturates - the paper's headline experiment in ~30 lines.
 *
 * Build & run:
 *   cmake -B build -G Ninja && cmake --build build
 *   ./build/examples/example_quickstart
 */

#include <cstdio>

#include "core/mediaworm.hh"

int
main()
{
    using namespace mediaworm;

    core::Table table({"load", "d (ms)", "sigma_d (ms)",
                       "BE latency (us)", "streams"});

    for (double load : {0.5, 0.6, 0.7, 0.8, 0.9, 0.96}) {
        core::ExperimentConfig cfg;
        cfg.router.numVcs = 16;
        cfg.router.scheduler = config::SchedulerKind::VirtualClock;
        cfg.traffic.inputLoad = load;
        cfg.traffic.realTimeFraction = 0.8; // 80:20 VBR : best-effort
        cfg.traffic.warmupFrames = 2;
        cfg.traffic.measuredFrames = 8;

        const core::ExperimentResult r = core::runExperiment(cfg);
        table.addRow({core::Table::num(load, 2),
                      core::Table::num(r.meanIntervalNormMs, 2),
                      core::Table::num(r.stddevIntervalNormMs, 3),
                      core::Table::num(r.beLatencyUs, 1),
                      core::Table::num(
                          static_cast<std::int64_t>(r.rtStreams))});
        std::printf("load %.2f done: %s\n", load,
                    r.describe().c_str());
    }

    std::printf("\nMediaWorm 8x8 switch, 16 VCs, Virtual Clock, "
                "80:20 VBR:BE\n%s",
                table.toString().c_str());
    std::printf("\nJitter-free delivery means d ~ 33 ms and sigma_d "
                "~ 0.\n");
    return 0;
}
